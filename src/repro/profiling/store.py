"""Persistent on-disk profile store: measurements that outlive the process.

Every profile used to die with the Python process, so each CLI
invocation and every experiment script re-simulated thousands of
(device, library, layer, channel count) configurations from scratch.
:class:`ProfileStore` persists :class:`~repro.profiling.runner.Measurement`
records to a JSON-lines file so that repeated invocations reuse them:
a :class:`~repro.api.Session` built with ``store=PATH`` (or the
``repro-experiments --profile-store PATH`` flag) reads existing
measurements before touching the simulator and appends whatever it had
to measure fresh.

File format
-----------
One JSON object per line, append-only.  Each line records one measured
sweep under its grouping key::

    {"v": 1, "device": "mali-g72", "library": "acl-gemm", "runs": 3,
     "seed": 0, "spec": {...layer spec fields...}, "spec_hash": "4f0c...",
     "sweep": [1, 2, ...], "measurements": [{...}, ...]}

* ``v`` is :data:`STORE_VERSION`.  Lines written by an incompatible
  store (or by a build with a different measurement-noise model, which
  bumps the version) are skipped on load — stale entries invalidate
  themselves and are simply re-measured and re-appended.
* The grouping key is ``(device, library, runs, seed, spec_hash)``
  where ``spec_hash`` fingerprints every latency-relevant layer-spec
  field *except* ``out_channels`` (the swept quantity) and ``seed`` is
  the measurement-noise stream seed (absent means 0, the historical
  stream), so differently-seeded sessions sharing one file never serve
  each other's perturbations.
* Lines that fail to parse are ignored (a truncated final line from a
  killed process does not poison the store).

Multi-thread and multi-process safety
-------------------------------------
Within one process, every index read/mutation happens under an internal
lock, so one store object may serve concurrent scheduler threads (the
process executor runs a wavefront's steps in parallel) without lost
updates or torn counters.  Across processes:

Appends happen as a single :func:`write` of the whole line under an
advisory ``flock`` (where the platform provides one), so two processes
recording into the same store cannot interleave partial lines.  Reads
never lock: a torn or foreign line is simply skipped.  Later records of
the same configuration supersede earlier ones on load (last wins);
:meth:`compact` rewrites the file atomically with one line per group,
dropping superseded duplicates.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - platform-dependent
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..models.layers import ConvLayerSpec
from ..obs.metrics import default_registry
from .runner import Measurement

_STORE_APPENDS = default_registry().counter(
    "repro_store_appends_total",
    "Sweep records appended to a profile store file.",
)
_STORE_RELOADS = default_registry().counter(
    "repro_store_reloads_total",
    "Full store-file loads into the in-memory index.",
)
_STORE_COMPACTIONS = default_registry().counter(
    "repro_store_compactions_total",
    "Atomic compact() rewrites of a profile store file.",
)
_STORE_FILE_BYTES = default_registry().gauge(
    "repro_store_file_bytes",
    "Size of the profile store file after the most recent append/compact.",
)

#: Bump whenever the measurement model changes (simulator cost formulas,
#: noise model, Measurement schema): old lines are skipped on load.
STORE_VERSION = 1

_GroupKey = Tuple[str, str, int, int, str]


class ProfileStoreError(ValueError):
    """Raised for unusable store paths or malformed store operations."""


def layer_spec_fingerprint(spec: ConvLayerSpec) -> str:
    """Stable hash of the latency-relevant spec fields, minus ``out_channels``.

    ``out_channels`` is the swept quantity — measurements at different
    channel counts of the same base layer share one group.
    """

    payload = spec.as_dict()
    del payload["out_channels"]
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


class ProfileStore:
    """Append-only JSONL store of measurements, indexed in memory.

    The file is read once, lazily, on first lookup; records appended
    through :meth:`record` update both the file and the index.  ``hits``
    / ``misses`` count per-configuration lookups, ``writes`` counts
    appended measurements.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.exists() and self.path.is_dir():
            raise ProfileStoreError(f"profile store path {self.path} is a directory")
        self._index: Optional[Dict[_GroupKey, Dict[int, Measurement]]] = None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.skipped_lines = 0
        # Guards the in-memory index and the counters against concurrent
        # scheduler threads; the file itself is flock-guarded separately.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _parse_line(self, line: str) -> Optional[Tuple[_GroupKey, List[Measurement], dict]]:
        line = line.strip()
        if not line:
            return None
        try:
            payload = json.loads(line)
            if payload.get("v") != STORE_VERSION:
                raise ValueError("incompatible store version")
            key = (
                payload["device"],
                payload["library"],
                int(payload["runs"]),
                int(payload.get("seed", 0)),
                payload["spec_hash"],
            )
            measurements = [
                Measurement(**entry) for entry in payload["measurements"]
            ]
        except (ValueError, KeyError, TypeError):
            self.skipped_lines += 1
            return None
        return key, measurements, payload

    def _load(self) -> Dict[_GroupKey, Dict[int, Measurement]]:
        with self._lock:
            if self._index is not None:
                return self._index
            index: Dict[_GroupKey, Dict[int, Measurement]] = {}
            if self.path.exists():
                with self.path.open("r", encoding="utf-8") as handle:
                    for line in handle:
                        parsed = self._parse_line(line)
                        if parsed is None:
                            continue
                        key, measurements, _ = parsed
                        group = index.setdefault(key, {})
                        for measurement in measurements:
                            group[measurement.out_channels] = measurement
            self._index = index
            _STORE_RELOADS.inc()
            return index

    def __len__(self) -> int:
        """Number of stored (configuration -> measurement) entries."""

        with self._lock:
            return sum(len(group) for group in self._load().values())

    # ------------------------------------------------------------------
    # Lookup and record
    # ------------------------------------------------------------------
    @staticmethod
    def _key(
        device: str, library: str, runs: int, spec: ConvLayerSpec, seed: int = 0
    ) -> _GroupKey:
        return (device, library, runs, seed, layer_spec_fingerprint(spec))

    def lookup(
        self,
        device: str,
        library: str,
        runs: int,
        spec: ConvLayerSpec,
        channel_counts: Sequence[int],
        seed: int = 0,
    ) -> Tuple[Dict[int, Measurement], List[int]]:
        """Split a sweep into (stored measurements, counts still to measure)."""

        with self._lock:
            group = self._load().get(self._key(device, library, runs, spec, seed), {})
            found: Dict[int, Measurement] = {}
            missing: List[int] = []
            for count in channel_counts:
                measurement = group.get(count)
                if measurement is None:
                    missing.append(count)
                else:
                    found[count] = measurement
            self.hits += len(found)
            self.misses += len(missing)
            return found, missing

    def record(
        self,
        device: str,
        library: str,
        runs: int,
        spec: ConvLayerSpec,
        measurements: Iterable[Measurement],
        seed: int = 0,
    ) -> None:
        """Append one measured sweep to the store file and the index.

        The whole record is written as a single line in one ``write``
        call under an advisory lock, so concurrent writers sharing the
        file cannot interleave partial lines.
        """

        measurements = list(measurements)
        if not measurements:
            return
        key = self._key(device, library, runs, spec, seed)
        payload = {
            "v": STORE_VERSION,
            "device": device,
            "library": library,
            "runs": runs,
            "seed": seed,
            "spec": spec.as_dict(),
            "spec_hash": key[4],
            "sweep": [measurement.out_channels for measurement in measurements],
            "measurements": [measurement.as_dict() for measurement in measurements],
        }
        line = json.dumps(payload) + "\n"
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle = self._open_locked_for_append()
            try:
                handle.write(line)
                handle.flush()
                _STORE_FILE_BYTES.set(handle.tell())
            finally:
                self._unlock_and_close(handle)
            _STORE_APPENDS.inc()
            group = self._load().setdefault(key, {})
            for measurement in measurements:
                group[measurement.out_channels] = measurement
            self.writes += len(measurements)

    def _open_locked_for_append(self):
        """Open the store for appending under an advisory exclusive lock.

        After acquiring the lock the handle's inode is re-checked
        against the path: a concurrent :meth:`compact` may have
        :func:`os.replace`'d the file while this writer was blocked, in
        which case the lock was won on the orphaned old inode and a
        write there would be lost.  On mismatch, reopen and retry.
        """

        while True:
            handle = self.path.open("a", encoding="utf-8")
            if fcntl is None:
                return handle
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                current = os.stat(self.path)
            except FileNotFoundError:
                fresh = False
            else:
                held = os.fstat(handle.fileno())
                fresh = (held.st_ino, held.st_dev) == (current.st_ino, current.st_dev)
            if fresh:
                return handle
            self._unlock_and_close(handle)

    @staticmethod
    def _unlock_and_close(handle) -> None:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the store with one line per group, dropping duplicates.

        The file is re-read from disk under the advisory lock (picking
        up records appended by other processes since this store's lazy
        load), deduplicated with last-writer-wins semantics, written to
        a temporary file in the same directory and atomically swapped in
        with :func:`os.replace`.  Returns the number of superseded or
        unreadable measurement entries dropped.
        """

        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        if not self.path.exists():
            self._index = {}
            return 0
        lock_handle = self._open_locked_for_append()
        try:
            index: Dict[_GroupKey, Dict[int, Measurement]] = {}
            payloads: Dict[_GroupKey, dict] = {}
            total_entries = 0
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        total_entries += 1  # count unreadable lines too
                    parsed = self._parse_line(line)
                    if parsed is None:
                        continue
                    key, measurements, payload = parsed
                    total_entries += len(measurements) - 1
                    group = index.setdefault(key, {})
                    for measurement in measurements:
                        group[measurement.out_channels] = measurement
                    payloads[key] = payload
            fd, tmp_name = tempfile.mkstemp(
                prefix=self.path.name + ".", suffix=".compact",
                dir=str(self.path.parent),
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as tmp:
                    for key, group in index.items():
                        payload = dict(payloads[key])
                        counts = sorted(group)
                        payload["sweep"] = counts
                        payload["measurements"] = [
                            group[count].as_dict() for count in counts
                        ]
                        tmp.write(json.dumps(payload) + "\n")
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        finally:
            self._unlock_and_close(lock_handle)
        self._index = index
        _STORE_COMPACTIONS.inc()
        _STORE_FILE_BYTES.set(self.path.stat().st_size)
        kept = sum(len(group) for group in index.values())
        return total_entries - kept

    def file_stats(self) -> Dict[str, Any]:
        """On-disk statistics of the store file, read fresh from disk.

        Returns ``lines`` (non-empty lines in the file), ``unreadable``
        (lines skipped as torn/foreign/stale), ``measurements`` (total
        measurement entries across readable lines, duplicates included),
        ``entries`` (distinct configurations after last-wins dedup),
        ``superseded`` (``measurements + unreadable - entries`` — what
        :meth:`compact` would drop), ``bytes`` (file size) and
        ``by_target`` — a ``"library@device"``-keyed breakdown of
        ``entries``/``measurements`` per target, which is how the fleet
        tests prove each configuration was simulated exactly once
        (``measurements == entries`` target by target).  The call does
        not disturb the in-memory index or the hit/miss counters.
        """

        stats: Dict[str, Any] = {
            "lines": 0, "unreadable": 0, "measurements": 0,
            "entries": 0, "superseded": 0, "bytes": 0, "by_target": {},
        }
        with self._lock:
            if not self.path.exists():
                return stats
            stats["bytes"] = self.path.stat().st_size
            skipped_before = self.skipped_lines
            index: Dict[_GroupKey, Dict[int, Measurement]] = {}
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    if not line.strip():
                        continue
                    stats["lines"] += 1
                    parsed = self._parse_line(line)
                    if parsed is None:
                        stats["unreadable"] += 1
                        continue
                    key, measurements, _ = parsed
                    stats["measurements"] += len(measurements)
                    target = f"{key[1]}@{key[0]}"  # library@device
                    per_target = stats["by_target"].setdefault(
                        target, {"entries": 0, "measurements": 0}
                    )
                    per_target["measurements"] += len(measurements)
                    group = index.setdefault(key, {})
                    for measurement in measurements:
                        group[measurement.out_channels] = measurement
            self.skipped_lines = skipped_before
        stats["entries"] = sum(len(group) for group in index.values())
        for key, group in index.items():
            stats["by_target"][f"{key[1]}@{key[0]}"]["entries"] += len(group)
        stats["superseded"] = (
            stats["measurements"] + stats["unreadable"] - stats["entries"]
        )
        return stats

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "entries": len(self),
                "skipped_lines": self.skipped_lines,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ProfileStore path={str(self.path)!r} entries={len(self)} "
            f"hits={self.hits} misses={self.misses} writes={self.writes}>"
        )


__all__ = ["STORE_VERSION", "ProfileStore", "ProfileStoreError", "layer_spec_fingerprint"]
