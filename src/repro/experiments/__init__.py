"""Experiment generators: one per paper figure/table, plus proposal studies.

Generators live in the unified :data:`EXPERIMENTS` registry; they share
one :class:`repro.api.Session` (see :func:`repro.experiments.base.default_session`)
so repeated runs reuse layer measurements.
"""

from .base import ExperimentResult, default_session
from .registry import (
    EXPERIMENTS,
    UnknownExperimentError,
    available_experiments,
    get_experiment,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "UnknownExperimentError",
    "available_experiments",
    "default_session",
    "get_experiment",
    "run_experiment",
]
