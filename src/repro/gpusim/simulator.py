"""Analytical embedded-GPU simulator.

The simulator turns a :class:`~repro.gpusim.kernel.KernelPlan` into an
execution time and a set of system-level counters on a given
:class:`~repro.gpusim.device.DeviceSpec`.  It models the mechanisms the
paper identifies as responsible for the observed behaviour:

* **throughput** — a kernel's time is the larger of its arithmetic time
  and its memory time (roofline style), scaled by how well the kernel's
  workgroup shape uses the SIMD lanes (``vector_efficiency``) and the
  cache (``memory_locality``);
* **utilisation** — kernels with too few work items cannot fill the
  GPU's compute units (the tiny remainder kernels the ACL GEMM split
  produces run at a fraction of peak);
* **job dispatch overhead** — every GPU job requires CPU-GPU
  communication and initialisation; the paper's Section IV-B shows this
  "often outweighs the benefits of dispatching workloads to
  accelerators";
* **system-level counters** — jobs, control-register reads/writes and
  interrupts scale with the number of dispatched jobs (Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .device import DeviceSpec
from .kernel import Kernel, KernelPlan

#: Control-register traffic and interrupts generated per dispatched job.
#: The absolute values are arbitrary (the paper's Figure 18 reports
#: *relative* counters); the proportionality to job count is what matters.
CONTROL_REGISTER_READS_PER_JOB = 96
CONTROL_REGISTER_WRITES_PER_JOB = 64
INTERRUPTS_PER_JOB = 2

#: Utilisation never drops below this floor: even a single workgroup
#: keeps one compute unit partially busy.
_MIN_UTILIZATION = 0.02


@dataclass(frozen=True)
class KernelExecution:
    """Simulated execution of one kernel."""

    kernel: Kernel
    arithmetic_time_s: float
    memory_time_s: float
    overhead_time_s: float
    utilization: float

    @property
    def compute_time_s(self) -> float:
        """Roofline time: the slower of the arithmetic and memory pipes."""

        return max(self.arithmetic_time_s, self.memory_time_s)

    @property
    def total_time_s(self) -> float:
        return self.compute_time_s + self.overhead_time_s


@dataclass(frozen=True)
class SystemCounters:
    """System-level counters reported by the simulator (Figure 18)."""

    jobs: int
    control_register_reads: int
    control_register_writes: int
    interrupts: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "jobs": self.jobs,
            "control_register_reads": self.control_register_reads,
            "control_register_writes": self.control_register_writes,
            "interrupts": self.interrupts,
        }


@dataclass(frozen=True)
class SimulationResult:
    """Full result of simulating one kernel plan on one device."""

    device: DeviceSpec
    plan: KernelPlan
    kernel_executions: List[KernelExecution] = field(default_factory=list)

    @property
    def kernel_time_s(self) -> float:
        """Time spent in kernels (compute + per-kernel launch overhead)."""

        return sum(execution.total_time_s for execution in self.kernel_executions)

    @property
    def job_dispatch_time_s(self) -> float:
        """Time spent creating and dispatching GPU jobs."""

        return self.counters.jobs * self.device.job_dispatch_overhead_s

    @property
    def total_time_s(self) -> float:
        return self.kernel_time_s + self.job_dispatch_time_s

    @property
    def total_time_ms(self) -> float:
        return self.total_time_s * 1e3

    @property
    def counters(self) -> SystemCounters:
        jobs = self.plan.job_count
        return SystemCounters(
            jobs=jobs,
            control_register_reads=jobs * CONTROL_REGISTER_READS_PER_JOB,
            control_register_writes=jobs * CONTROL_REGISTER_WRITES_PER_JOB,
            interrupts=jobs * INTERRUPTS_PER_JOB,
        )

    def execution_of(self, kernel_name: str) -> List[KernelExecution]:
        """Executions of all kernels with the given name."""

        return [
            execution
            for execution in self.kernel_executions
            if execution.kernel.name == kernel_name
        ]


class GpuSimulator:
    """Simulate kernel plans on an embedded GPU device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # ------------------------------------------------------------------
    def utilization(self, kernel: Kernel) -> float:
        """Fraction of the GPU's compute resources the kernel can occupy.

        Work items below the device's full-utilisation threshold leave
        compute units idle; this is what makes the tiny remainder
        kernels of a split GEMM so expensive relative to their size.
        """

        full = self.device.full_utilization_work_items
        # Even a tiny kernel keeps at least one compute unit busy, so the
        # floor is one unit's share of the machine.
        floor = max(_MIN_UTILIZATION, 1.0 / self.device.compute_units)
        return max(floor, min(1.0, kernel.work_items / full))

    def simulate_kernel(self, kernel: Kernel) -> KernelExecution:
        """Compute the execution profile of a single kernel."""

        utilization = self.utilization(kernel)
        arith_throughput = (
            self.device.peak_arith_instructions_per_second
            * kernel.vector_efficiency
            * utilization
        )
        memory_throughput = (
            self.device.peak_memory_instructions_per_second
            * kernel.memory_locality
            * utilization
        )
        arithmetic_time = kernel.arithmetic_instructions / arith_throughput
        memory_time = kernel.memory_instructions / memory_throughput
        return KernelExecution(
            kernel=kernel,
            arithmetic_time_s=arithmetic_time,
            memory_time_s=memory_time,
            overhead_time_s=self.device.kernel_launch_overhead_s,
            utilization=utilization,
        )

    def simulate(self, plan: KernelPlan) -> SimulationResult:
        """Simulate a full kernel plan."""

        executions = [self.simulate_kernel(kernel) for kernel in plan]
        return SimulationResult(device=self.device, plan=plan, kernel_executions=executions)

    def run_time_ms(self, plan: KernelPlan) -> float:
        """Convenience wrapper returning only the total time in ms."""

        return self.simulate(plan).total_time_ms
