"""Analysis: speedup matrices, latency curves and report rendering.

Feed these from a :class:`repro.api.Session` runner so repeated analyses
share layer measurements (see :mod:`repro.api`, the canonical entry point).
"""

from .curves import LatencyCurve, curve_from_table, latency_curve
from .speedup import (
    FIGURE1_PRUNE_DISTANCES,
    PAPER_PRUNE_DISTANCES,
    TVM_PRUNE_DISTANCES,
    SpeedupMatrix,
    best_speedup_at_distance,
    speedup_matrix,
    worst_slowdown_at_distance,
)

__all__ = [
    "FIGURE1_PRUNE_DISTANCES",
    "LatencyCurve",
    "PAPER_PRUNE_DISTANCES",
    "SpeedupMatrix",
    "TVM_PRUNE_DISTANCES",
    "best_speedup_at_distance",
    "curve_from_table",
    "latency_curve",
    "speedup_matrix",
    "worst_slowdown_at_distance",
]
