"""``ServiceClient``: the urllib-based Python client of the service API.

Built on nothing but the standard library, mirroring the server's
stdlib-only constraint::

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit(plan, executor="process", jobs=4)
    for event in client.iter_events(job["id"]):
        print(event["event"], event.get("step", ""))
    final = client.wait(job["id"])

Job records come back as the plain dicts the server serves (see
:meth:`repro.service.jobs.Job.to_dict`), so results are immediately
JSON-dumpable.  HTTP error responses raise :class:`ServiceError`
carrying the status code and the server's ``error`` message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Union

from ..api.plan import Plan
from ..obs.trace import TRACE_HEADER, SpanContext


class ServiceError(RuntimeError):
    """An HTTP-level failure talking to the service."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServiceClient:
    """A thin, dependency-free client for :class:`~repro.service.server.ReproServer`.

    ``timeout`` bounds every individual HTTP request (connect + read),
    not whole-job waits — those take their own ``timeout`` argument.
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _open(
        self,
        method: str,
        path: str,
        payload: Any = None,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ):
        body = None
        headers = {"Accept": "application/json", **(headers or {})}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}{path}", data=body, headers=headers, method=method
        )
        try:
            return urllib.request.urlopen(
                request, timeout=timeout if timeout is not None else self.timeout
            )
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (ValueError, AttributeError):
                pass
            raise ServiceError(
                f"{method} {path} failed with HTTP {error.code}: {detail}",
                status=error.code,
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach {self.url}: {error.reason}") from error

    def _request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        with self._open(method, path, payload, headers=headers) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def version(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/version")

    def submit(
        self,
        plan: Union[Plan, Dict[str, Any]],
        executor: Optional[str] = None,
        jobs: Optional[int] = None,
        seed: Optional[int] = None,
        trace: Union[SpanContext, str, None] = None,
    ) -> Dict[str, Any]:
        """Submit a plan; returns the queued job record (``202``).

        ``trace`` (a :class:`~repro.obs.trace.SpanContext` or a
        pre-rendered ``trace_id/span_id`` header value) is sent as the
        ``X-Repro-Trace`` header, so the server-side job's spans stitch
        under the caller's trace.
        """

        payload: Dict[str, Any] = {
            "plan": plan.to_dict() if isinstance(plan, Plan) else plan
        }
        if executor is not None:
            payload["executor"] = executor
        if jobs is not None:
            payload["jobs"] = jobs
        if seed is not None:
            payload["seed"] = seed
        headers = None
        if trace is not None:
            value = trace.to_header() if isinstance(trace, SpanContext) else trace
            headers = {TRACE_HEADER: value}
        return self._request("POST", "/v1/plans", payload, headers=headers)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def iter_events(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        keepalives: bool = False,
    ) -> Iterator[Dict[str, Any]]:
        """Stream a job's NDJSON events until its ``job-finished`` event.

        A finished job replays its full event log and the iterator ends
        immediately.  ``timeout`` bounds the *whole stream*; ``None``
        streams until the job finishes, waiting up to an hour between
        consecutive events (so a dead server cannot hang the client
        forever).  Timeouts raise :class:`ServiceError`.

        The server interleaves ``{"event": "keepalive"}`` lines while a
        job is idle; they are filtered out unless ``keepalives=True``
        (they carry no job progress, only connection liveness).
        """

        read_timeout = 3600.0 if timeout is None else timeout
        response = self._open(
            "GET", f"/v1/jobs/{job_id}/events", timeout=read_timeout
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            with response:
                for line in response:
                    if deadline is not None and time.monotonic() > deadline:
                        raise ServiceError(
                            f"timed out streaming events of job {job_id} after {timeout}s"
                        )
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line.decode("utf-8"))
                    if event.get("event") == "keepalive" and not keepalives:
                        continue
                    yield event
        except TimeoutError as error:
            raise ServiceError(
                f"no event from job {job_id} for {read_timeout}s"
            ) from error

    def wait(
        self, job_id: str, timeout: Optional[float] = None, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Block until a job reaches a terminal status; returns its record."""

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("succeeded", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} (still {job['status']}) "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    # ------------------------------------------------------------------
    # Observability surface
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """The server's full metrics snapshot (``GET /v1/metrics.json``)."""

        return self._request("GET", "/v1/metrics.json")

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text format (``GET /v1/metrics``)."""

        with self._open("GET", "/v1/metrics") as response:
            return response.read().decode("utf-8")

    def store_stats(self) -> Dict[str, Any]:
        """On-disk statistics of the server's profile store (``GET /v1/store``).

        The server reads the store fresh from disk, so the figures are
        per shard (``shards``) and per target (``by_target``) and
        include appends from every worker process sharing the store.
        Raises :class:`ServiceError` with status 404 when the service
        runs without a profile store.
        """

        return self._request("GET", "/v1/store")

    def fleet_metrics(self) -> Dict[str, Any]:
        """The merged fleet snapshot (``GET /v1/metrics/fleet.json``).

        Every pushed worker snapshot — plus the server's own registry —
        merged under the ``worker`` label; see
        :mod:`repro.obs.rollup` for the merge semantics.
        """

        return self._request("GET", "/v1/metrics/fleet.json")

    def fleet_metrics_text(self) -> str:
        """The merged fleet snapshot as Prometheus text (``GET /v1/metrics/fleet``)."""

        with self._open("GET", "/v1/metrics/fleet") as response:
            return response.read().decode("utf-8")

    def push_worker_metrics(
        self,
        worker: str,
        snapshot: Dict[str, Any],
        label: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Push a worker's registry snapshot into the server's rollup.

        ``label`` is the ``worker`` label value the rollup files the
        series under (defaults server-side to the worker id).
        """

        payload: Dict[str, Any] = {"snapshot": snapshot}
        if label is not None:
            payload["label"] = label
        return self._request("POST", f"/v1/workers/{worker}/metrics", payload)

    # ------------------------------------------------------------------
    # Fleet surface (used by repro.service.fleet.worker)
    # ------------------------------------------------------------------
    def fleet(self) -> Dict[str, Any]:
        """Lease counts, lifetime counters and known workers."""

        return self._request("GET", "/v1/fleet")

    def register_worker(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Join the fleet; returns ``{"worker": id, "lease_ttl": ttl}``."""

        payload = {"name": name} if name is not None else {}
        return self._request("POST", "/v1/workers/register", payload)

    def claim_lease(
        self, worker: str, timeout: float = 0.0
    ) -> Optional[Dict[str, Any]]:
        """Long-poll for one work lease; ``None`` when nothing is pending.

        The server answers 204 after its poll horizon elapses without
        work; the request timeout leaves generous headroom on top of the
        server-side ``timeout`` so slow networks do not surface spurious
        errors.
        """

        with self._open(
            "POST",
            "/v1/leases/claim",
            {"worker": worker, "timeout": timeout},
            timeout=timeout + self.timeout,
        ) as response:
            if response.status == 204:
                return None
            return json.loads(response.read().decode("utf-8"))

    def heartbeat_lease(self, lease_id: str, worker: str) -> Dict[str, Any]:
        """Extend a held lease's deadline by one TTL."""

        return self._request(
            "POST", f"/v1/leases/{lease_id}/heartbeat", {"worker": worker}
        )

    def complete_lease(
        self,
        lease_id: str,
        worker: str,
        measurements: Optional[List[Dict[str, Any]]] = None,
        error: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Report a lease's measurements (or the error that broke it)."""

        payload: Dict[str, Any] = {"worker": worker}
        if measurements is not None:
            payload["measurements"] = measurements
        if error is not None:
            payload["error"] = error
        return self._request("POST", f"/v1/leases/{lease_id}/complete", payload)


__all__ = ["ServiceClient", "ServiceError"]
