"""Non-convolutional operators of the NumPy compute substrate.

These cover the "other layer types" the paper mentions (pooling,
activations, batch normalisation, dropout, fully-connected layers) —
cheap at inference time, but needed to run whole networks end-to-end in
the examples and integration tests.
"""

from __future__ import annotations

import numpy as np

from ..models.layers import (
    ActivationLayerSpec,
    BatchNormLayerSpec,
    DropoutLayerSpec,
    FullyConnectedLayerSpec,
    PoolLayerSpec,
)
from .tensor import DTYPE, pad_input, random_tensor


def relu(inputs: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""

    return np.maximum(inputs, 0.0).astype(DTYPE)


def tanh(inputs: np.ndarray) -> np.ndarray:
    return np.tanh(inputs).astype(DTYPE)


def sigmoid(inputs: np.ndarray) -> np.ndarray:
    return (1.0 / (1.0 + np.exp(-inputs))).astype(DTYPE)


def activation(inputs: np.ndarray, spec: ActivationLayerSpec) -> np.ndarray:
    """Apply the activation named by a spec."""

    functions = {"relu": relu, "tanh": tanh, "sigmoid": sigmoid}
    return functions[spec.kind](inputs)


def pool2d(inputs: np.ndarray, spec: PoolLayerSpec) -> np.ndarray:
    """Max or average pooling over an NCHW tensor."""

    if inputs.ndim != 4:
        raise ValueError(f"pool2d expects an NCHW tensor, got {inputs.shape}")
    batch, channels, height, width = inputs.shape
    if spec.mode == "max" and spec.padding:
        # Pad with -inf so padded positions never win the max.
        padded = np.pad(
            inputs,
            ((0, 0), (0, 0), (spec.padding, spec.padding), (spec.padding, spec.padding)),
            mode="constant",
            constant_values=-np.inf,
        )
    else:
        padded = pad_input(inputs, spec.padding)
    out_h = (height + 2 * spec.padding - spec.kernel_size) // spec.stride + 1
    out_w = (width + 2 * spec.padding - spec.kernel_size) // spec.stride + 1

    strides = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(batch, channels, out_h, out_w, spec.kernel_size, spec.kernel_size),
        strides=(
            strides[0],
            strides[1],
            strides[2] * spec.stride,
            strides[3] * spec.stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    if spec.mode == "max":
        return windows.max(axis=(4, 5)).astype(DTYPE)
    return windows.mean(axis=(4, 5)).astype(DTYPE)


def batch_norm(inputs: np.ndarray, spec: BatchNormLayerSpec, eps: float = 1e-5) -> np.ndarray:
    """Inference-time batch normalisation with deterministic parameters."""

    gamma = random_tensor((spec.num_features,), spec.name + ".gamma", scale=0.1) + 1.0
    beta = random_tensor((spec.num_features,), spec.name + ".beta", scale=0.1)
    mean = random_tensor((spec.num_features,), spec.name + ".mean", scale=0.1)
    var = np.abs(random_tensor((spec.num_features,), spec.name + ".var", scale=0.1)) + 1.0
    shape = (1, spec.num_features, 1, 1) if inputs.ndim == 4 else (1, spec.num_features)
    normalised = (inputs - mean.reshape(shape)) / np.sqrt(var.reshape(shape) + eps)
    return (gamma.reshape(shape) * normalised + beta.reshape(shape)).astype(DTYPE)


def dropout(inputs: np.ndarray, spec: DropoutLayerSpec) -> np.ndarray:
    """Dropout is the identity at inference time."""

    del spec
    return inputs


def fully_connected(inputs: np.ndarray, spec: FullyConnectedLayerSpec) -> np.ndarray:
    """Dense layer with deterministic weights."""

    flat = inputs.reshape(inputs.shape[0], -1)
    if flat.shape[1] != spec.in_features:
        raise ValueError(
            f"{spec.name}: expected {spec.in_features} input features, got {flat.shape[1]}"
        )
    weights = random_tensor(
        (spec.out_features, spec.in_features),
        spec.name + ".weight",
        scale=1.0 / np.sqrt(spec.in_features),
    )
    bias = random_tensor((spec.out_features,), spec.name + ".bias", scale=0.1)
    result = flat @ weights.T
    if spec.bias:
        result = result + bias
    return result.astype(DTYPE)


def global_average_pool(inputs: np.ndarray) -> np.ndarray:
    """Average over the spatial dimensions of an NCHW tensor."""

    return inputs.mean(axis=(2, 3)).astype(DTYPE)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""

    shifted = logits - logits.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return (exps / exps.sum(axis=axis, keepdims=True)).astype(DTYPE)
