"""Tests for kernels, kernel plans and workgroup sizes."""

import pytest

from repro.gpusim import Kernel, KernelPlan, KernelPlanError, WorkgroupSize


def make_kernel(**overrides):
    defaults = dict(
        name="k",
        arithmetic_instructions=1000,
        memory_instructions=100,
        work_items=256,
    )
    defaults.update(overrides)
    return Kernel(**defaults)


class TestWorkgroupSize:
    def test_threads(self):
        assert WorkgroupSize(2, 1, 8).threads == 16
        assert WorkgroupSize(4, 1, 1).threads == 4

    def test_as_tuple(self):
        assert WorkgroupSize(1, 2, 3).as_tuple() == (1, 2, 3)

    def test_default_is_single_thread(self):
        assert WorkgroupSize().threads == 1

    def test_rejects_zero_dimension(self):
        with pytest.raises(KernelPlanError):
            WorkgroupSize(0, 1, 1)

    def test_str_format(self):
        assert str(WorkgroupSize(2, 1, 8)) == "2x1x8"


class TestKernel:
    def test_total_instructions(self):
        assert make_kernel().total_instructions == 1100

    def test_rejects_empty_name(self):
        with pytest.raises(KernelPlanError):
            make_kernel(name="")

    def test_rejects_negative_instructions(self):
        with pytest.raises(KernelPlanError):
            make_kernel(arithmetic_instructions=-1)

    def test_rejects_zero_work_items(self):
        with pytest.raises(KernelPlanError):
            make_kernel(work_items=0)

    def test_rejects_bad_vector_efficiency(self):
        with pytest.raises(KernelPlanError):
            make_kernel(vector_efficiency=0.0)
        with pytest.raises(KernelPlanError):
            make_kernel(vector_efficiency=1.5)

    def test_rejects_bad_memory_locality(self):
        with pytest.raises(KernelPlanError):
            make_kernel(memory_locality=0.0)

    def test_defaults_dispatch_a_job(self):
        assert make_kernel().dispatches_job is True


class TestKernelPlan:
    def make_plan(self):
        return KernelPlan(
            library="acl-gemm",
            layer_name="layer",
            kernels=(
                make_kernel(name="im2col", dispatches_job=False, tag="im2col"),
                make_kernel(name="gemm_mm", arithmetic_instructions=5000, tag="gemm-main"),
                make_kernel(name="gemm_mm", arithmetic_instructions=500, tag="gemm-remainder"),
            ),
        )

    def test_length_and_iteration(self):
        plan = self.make_plan()
        assert len(plan) == 3
        assert [kernel.name for kernel in plan] == ["im2col", "gemm_mm", "gemm_mm"]

    def test_job_count_only_counts_dispatching_kernels(self):
        assert self.make_plan().job_count == 2

    def test_total_instruction_aggregates(self):
        plan = self.make_plan()
        assert plan.total_arithmetic_instructions == 1000 + 5000 + 500
        assert plan.total_memory_instructions == 300
        assert plan.total_instructions == 6800

    def test_kernels_named(self):
        assert len(self.make_plan().kernels_named("gemm_mm")) == 2

    def test_kernels_tagged(self):
        assert len(self.make_plan().kernels_tagged("gemm-remainder")) == 1

    def test_find_returns_first_match(self):
        plan = self.make_plan()
        assert plan.find("gemm_mm").arithmetic_instructions == 5000
        assert plan.find("missing") is None

    def test_kernel_names(self):
        assert self.make_plan().kernel_names() == ["im2col", "gemm_mm", "gemm_mm"]

    def test_empty_plan_rejected(self):
        with pytest.raises(KernelPlanError):
            KernelPlan(library="x", layer_name="y", kernels=())
