"""OpenCL-style and CUDA-style profilers over the GPU simulator.

Both profilers take a kernel plan, run it through the simulator for the
target device, and emit :class:`~repro.profiling.events.KernelEvent`
records as the real interceptors would.  Measurement noise is modelled
as a small deterministic pseudo-random perturbation so that "median of
10 runs" (the paper's methodology, Section III-D) is meaningful and
reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import KernelPlan
from ..gpusim.simulator import GpuSimulator, SimulationResult
from .events import KernelEvent, ProfiledRun

#: Relative standard deviation of the multiplicative measurement noise.
MEASUREMENT_NOISE_STD = 0.02

#: Assumed size of one tensor element (fp32).
_BYTES_PER_ELEMENT = 4


def noise_material(device: DeviceSpec, plan: KernelPlan) -> str:
    """Seed material identifying one measured configuration.

    Both the scalar profilers and the batched measurement path derive
    their noise from this string, so a configuration measured either way
    sees the same deterministic perturbations.
    """

    return f"{device.name}/{plan.library}/{plan.layer_name}/{plan.notes}"


#: splitmix64 constants (Steele et al., "Fast splittable pseudorandom
#: number generators") — a counter-based generator whose draws are pure
#: integer mixing, so whole (configuration x run) matrices vectorize.
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_MUL2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, elementwise over a uint64 array."""

    z = (x ^ (x >> np.uint64(30))) * _SPLITMIX_MUL1
    z = (z ^ (z >> np.uint64(27))) * _SPLITMIX_MUL2
    return z ^ (z >> np.uint64(31))


def _seed_of(seed_material: str, seed: int = 0) -> np.uint64:
    """Per-configuration splitmix64 seed, optionally forked by a stream seed.

    ``seed == 0`` (the default) reproduces the historical stream exactly;
    any other value splits off an independent but equally deterministic
    stream, so two sessions built with the same seed see identical
    measurements without sharing a profile store.
    """

    digest = hashlib.sha256(seed_material.encode("utf-8")).digest()
    value = int.from_bytes(digest[:8], "little")
    if seed:
        # The splitmix64 finalizer in plain Python ints: scalar NumPy
        # uint64 multiplies warn on (expected, harmless) overflow.
        mask = 2**64 - 1
        z = (value + seed * int(_SPLITMIX_GAMMA)) & mask
        z = ((z ^ (z >> 30)) * int(_SPLITMIX_MUL1)) & mask
        z = ((z ^ (z >> 27)) * int(_SPLITMIX_MUL2)) & mask
        value = z ^ (z >> 31)
    return np.uint64(value)


def _factors_from_seeds(seeds: np.ndarray, runs: int) -> np.ndarray:
    """(len(seeds), runs) noise factor matrix from per-configuration seeds.

    Two counter-derived uniforms per run are turned into a standard
    normal via Box-Muller; run ``i`` of a configuration depends only on
    (seed, i), so any prefix of the run sequence is stable.
    """

    counters = np.arange(1, 2 * runs + 1, dtype=np.uint64)
    mixed = _splitmix64(seeds[:, np.newaxis] + _SPLITMIX_GAMMA * counters)
    # Top 53 bits, shifted into (0, 1] so the log below is always finite.
    uniform = ((mixed >> np.uint64(11)).astype(np.float64) + 1.0) * 2.0**-53
    u1, u2 = uniform[:, 0::2], uniform[:, 1::2]
    normal = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
    return 1.0 + MEASUREMENT_NOISE_STD * normal


def noise_factors(seed_material: str, runs: int, seed: int = 0) -> np.ndarray:
    """Deterministic noise factors close to 1.0 for ``runs`` repetitions."""

    return _factors_from_seeds(np.array([_seed_of(seed_material, seed)]), runs)[0]


def noise_matrix(seed_materials: Iterable[str], runs: int, seed: int = 0) -> np.ndarray:
    """Noise factors for many configurations at once, one row each.

    Row ``i`` equals ``noise_factors(seed_materials[i], runs, seed)``;
    the batched measurement path uses this to perturb a whole sweep in
    one array operation.
    """

    seeds = np.array(
        [_seed_of(material, seed) for material in seed_materials], dtype=np.uint64
    )
    if not len(seeds):
        return np.zeros((0, runs))
    return _factors_from_seeds(seeds, runs)


def _noise_factor(seed_material: str, run_index: int, seed: int = 0) -> float:
    """Deterministic noise factor of one run (the scalar profilers' view)."""

    return float(noise_factors(seed_material, run_index + 1, seed)[-1])


@dataclass
class _ProfilerBase:
    """Shared machinery of the OpenCL and CUDA profilers.

    ``seed`` forks the measurement-noise stream (0 keeps the historical
    stream); it mirrors :class:`~repro.profiling.runner.ProfileRunner.seed`
    so scalar and batched measurements of the same configuration agree
    for any seed.
    """

    device: DeviceSpec
    seed: int = 0

    def __post_init__(self) -> None:
        self.simulator = GpuSimulator(self.device)

    # ------------------------------------------------------------------
    def profile(self, plan: KernelPlan, run_index: int = 0) -> ProfiledRun:
        """Execute one run of a plan and record kernel events."""

        result = self.simulator.simulate(plan)
        noise = _noise_factor(noise_material(self.device, plan), run_index, self.seed)
        return self._build_run(result, noise)

    def _build_run(self, result: SimulationResult, noise: float) -> ProfiledRun:
        run = ProfiledRun(
            label=result.plan.layer_name,
            device_name=self.device.name,
            library_name=result.plan.library,
        )
        clock = 0.0
        job_index = 0
        for execution in result.kernel_executions:
            kernel = execution.kernel
            queued = clock
            dispatch_delay = 0.0
            if kernel.dispatches_job:
                job_index += 1
                dispatch_delay = self.device.job_dispatch_overhead_s * noise
            started = queued + dispatch_delay + self.device.kernel_launch_overhead_s * noise
            finished = started + execution.compute_time_s * noise
            run.events.append(
                KernelEvent(
                    kernel_name=kernel.name,
                    queued_at_s=queued,
                    started_at_s=started,
                    finished_at_s=finished,
                    work_items=kernel.work_items,
                    workgroup=kernel.workgroup.as_tuple(),
                    memory_footprint_bytes=kernel.memory_instructions * _BYTES_PER_ELEMENT,
                    job_index=job_index if kernel.dispatches_job else None,
                )
            )
            clock = finished
        return run


class OpenCLProfiler(_ProfilerBase):
    """Intercepts OpenCL kernel dispatches (used for ACL and TVM on Mali).

    Mirrors the custom interception library of Section III-C.1: each
    enqueued kernel's start/finish time, name and memory footprint are
    recorded.
    """

    api = "opencl"

    def __post_init__(self) -> None:
        if self.device.api != "opencl":
            raise ValueError(
                f"OpenCLProfiler requires an OpenCL device, got {self.device.name}"
            )
        super().__post_init__()


class CudaEventProfiler(_ProfilerBase):
    """Times cuDNN tasks with CUDA-event style begin/end pairs.

    Mirrors Section III-C.2: the time between CUDA events around each
    cuDNN task, cross-checked against nvprof.
    """

    api = "cuda"

    def __post_init__(self) -> None:
        if self.device.api != "cuda":
            raise ValueError(
                f"CudaEventProfiler requires a CUDA device, got {self.device.name}"
            )
        super().__post_init__()


def profiler_for_device(device: DeviceSpec) -> _ProfilerBase:
    """Instantiate the appropriate profiler for a device's API."""

    if device.api == "opencl":
        return OpenCLProfiler(device)
    return CudaEventProfiler(device)


def profile_runs(
    device: DeviceSpec, plan: KernelPlan, runs: int = 10
) -> List[ProfiledRun]:
    """Profile ``runs`` repetitions of a plan (default 10, as in the paper)."""

    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    profiler = profiler_for_device(device)
    return [profiler.profile(plan, run_index=index) for index in range(runs)]
