"""Tests for repro.obs.traceview: offline span-tree reconstruction.

The trace file is a multi-process artifact — spans land in completion
order from the client, the server and every fleet worker — so these
tests pin the parts that make ``trace ls``/``trace show`` trustworthy:
garbage tolerance in the loader, parent/child stitching (including
orphaned parents surfacing as roots), stable render ordering and the
exemplar cross-reference against a metrics snapshot.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceWriter, Tracer
from repro.obs.traceview import (
    TraceViewError,
    build_tree,
    exemplar_references,
    list_traces,
    load_spans,
    render_trace,
    render_tree,
)


def span(name, trace, span_id, parent=None, started=0.0, duration=1.0, **extra):
    record = {
        "name": name, "trace": trace, "span": span_id,
        "started_at": started, "duration_ms": duration, "status": "ok",
    }
    if parent is not None:
        record["parent"] = parent
    record.update(extra)
    return record


class TestLoadSpans:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceViewError, match="not found"):
            load_spans(tmp_path / "absent.jsonl")

    def test_skips_garbage_and_truncated_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = span("job", "t1", "s1")
        path.write_text(
            "\n".join([
                json.dumps(good),
                '{"name": "job", "trace": "t1", "span"',  # truncated tail
                "not json at all",
                '"a bare string"',
                json.dumps({"trace": "t1", "span": "s2"}),  # no name
                json.dumps({"name": "x", "trace": 7, "span": "s3"}),  # non-str
                "",
            ]),
            encoding="utf-8",
        )
        assert load_spans(path) == [good]

    def test_real_writer_output_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(writer=TraceWriter(path))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        loaded = load_spans(path)
        assert [record["name"] for record in loaded] == ["inner", "outer"]


class TestListTraces:
    def test_one_summary_per_trace_newest_first(self):
        spans = [
            span("old-root", "t-old", "s1", started=10.0, duration=100.0),
            span("new-root", "t-new", "s2", started=20.0, duration=50.0),
            span("child", "t-new", "s3", parent="s2", started=20.01, duration=5.0),
        ]
        summaries = list_traces(spans)
        by_trace = {row["trace"]: row for row in summaries}
        new, old = by_trace["t-new"], by_trace["t-old"]
        assert summaries == [new, old]  # newest first
        assert (new["root"], new["spans"], new["errors"]) == ("new-root", 2, 0)
        assert (old["root"], old["spans"]) == ("old-root", 1)

    def test_duration_is_the_wall_window_across_spans(self):
        spans = [
            span("root", "t1", "s1", started=1.0, duration=10.0),
            span("late", "t1", "s2", parent="s1", started=2.0, duration=500.0),
        ]
        (summary,) = list_traces(spans)
        # 1.0s .. 2.5s -> 1500 ms, not the root's own 10 ms.
        assert summary["duration_ms"] == pytest.approx(1500.0)

    def test_errors_counted_and_orphans_still_get_a_root(self):
        spans = [
            span("only-child", "t1", "s1", parent="gone", status="error"),
        ]
        (summary,) = list_traces(spans)
        assert summary["errors"] == 1
        assert summary["root"] == "only-child"


class TestBuildTree:
    def test_unknown_trace_raises(self):
        with pytest.raises(TraceViewError, match="no spans"):
            build_tree([span("a", "t1", "s1")], "t-missing")

    def test_parent_child_stitching_across_file_order(self):
        # Completion order: children first, like a real writer produces.
        spans = [
            span("leaf", "t1", "s3", parent="s2", started=3.0),
            span("mid", "t1", "s2", parent="s1", started=2.0),
            span("root", "t1", "s1", started=1.0),
            span("other-trace", "t2", "s9"),
        ]
        (root,) = build_tree(spans, "t1")
        assert root["span"]["name"] == "root"
        (mid,) = root["children"]
        assert mid["span"]["name"] == "mid"
        assert [node["span"]["name"] for node in mid["children"]] == ["leaf"]

    def test_orphaned_parent_becomes_a_root(self):
        spans = [
            span("root", "t1", "s1", started=1.0),
            span("orphan", "t1", "s9", parent="never-written", started=2.0),
        ]
        roots = build_tree(spans, "t1")
        assert [node["span"]["name"] for node in roots] == ["root", "orphan"]

    def test_children_sorted_by_start_time(self):
        spans = [
            span("root", "t1", "s1", started=0.0),
            span("second", "t1", "s3", parent="s1", started=2.0),
            span("first", "t1", "s2", parent="s1", started=1.0),
        ]
        (root,) = build_tree(spans, "t1")
        assert [node["span"]["name"] for node in root["children"]] == [
            "first", "second",
        ]

    def test_duplicate_span_ids_keep_the_first_record(self):
        spans = [
            span("original", "t1", "s1"),
            span("retry", "t1", "s1"),
        ]
        (root,) = build_tree(spans, "t1")
        assert root["span"]["name"] == "original"


class TestRendering:
    def test_indentation_error_flag_and_attrs(self):
        spans = [
            span("root", "t1", "s1", started=1.0, duration=1500.0),
            span("child", "t1", "s2", parent="s1", started=1.1, duration=2.5,
                 status="error", attrs={"step": "sweep-1", "n": 3}),
        ]
        text = render_tree(build_tree(spans, "t1"))
        assert text.splitlines() == [
            "root  1.50s",
            "  child  2.5ms !  [n=3 step=sweep-1]",
        ]

    def test_render_trace_header_and_exemplar_section(self):
        registry = MetricsRegistry()
        wait = registry.histogram("repro_wait_seconds", "Wait.", buckets=(1.0,))
        wait.observe(0.5, exemplar="t1")
        spans = [span("root", "t1", "s1")]
        text = render_trace(spans, "t1", snapshot=registry.snapshot())
        assert text.startswith("trace t1  (1 spans)\n")
        assert "metric exemplars referencing this trace:" in text
        assert "repro_wait_seconds le=1.0  value=0.5" in text

    def test_render_trace_without_matching_exemplars_has_no_section(self):
        registry = MetricsRegistry()
        registry.histogram("repro_wait_seconds", "Wait.", buckets=(1.0,)).observe(
            0.5, exemplar="other-trace"
        )
        text = render_trace([span("root", "t1", "s1")], "t1",
                            snapshot=registry.snapshot())
        assert "exemplars" not in text


class TestExemplarReferences:
    def test_matches_only_the_requested_trace(self):
        registry = MetricsRegistry()
        wait = registry.histogram(
            "repro_wait_seconds", "Wait.", buckets=(1.0, 5.0), labelnames=("stage",)
        )
        wait.observe(0.5, exemplar="t-yes", stage="claim")
        wait.observe(3.0, exemplar="t-no", stage="claim")
        (row,) = exemplar_references(registry.snapshot(), "t-yes")
        assert row == {
            "metric": "repro_wait_seconds",
            "labels": {"stage": "claim"},
            "le": "1.0",
            "value": 0.5,
        }

    def test_empty_snapshot_yields_no_rows(self):
        assert exemplar_references({}, "t1") == []
