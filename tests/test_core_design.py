"""Tests for design-space exploration (choosing layer sizes per target)."""

import pytest

from repro.core import (
    DesignSpaceExplorer,
    best_library_for_layer,
    iter_default_targets,
    recommend_channel_counts,
)
from repro.models import ConvLayerSpec


@pytest.fixture(scope="module")
def template():
    """A 3x3 layer template on a 28x28 map (the shape of ResNet-50 L16)."""

    return ConvLayerSpec(
        name="design.template", in_channels=128, out_channels=128,
        kernel_size=3, stride=1, padding=1, input_hw=28,
    )


class TestRecommendations:
    def test_returns_at_most_top_k(self, template):
        recommendations = recommend_channel_counts(
            template, "jetson-tx2", "cudnn", top_k=3, runs=1
        )
        assert 1 <= len(recommendations) <= 3

    def test_cudnn_recommends_full_tiles(self, template):
        recommendations = recommend_channel_counts(
            template, "jetson-tx2", "cudnn", top_k=4, runs=1
        )
        assert all(rec.out_channels % 32 == 0 for rec in recommendations)

    def test_acl_gemm_recommends_unsplit_counts(self, template):
        from repro.libraries import split_columns

        recommendations = recommend_channel_counts(
            template, "hikey-970", "acl-gemm", top_k=4, runs=1
        )
        assert all(not split_columns(rec.out_channels).is_split for rec in recommendations)

    def test_ranked_by_channels_per_ms(self, template):
        recommendations = recommend_channel_counts(
            template, "jetson-tx2", "cudnn", top_k=4, runs=1
        )
        rates = [rec.channels_per_ms for rec in recommendations]
        assert rates == sorted(rates, reverse=True)

    def test_max_channels_caps_search(self, template):
        recommendations = recommend_channel_counts(
            template, "jetson-tx2", "cudnn", max_channels=64, top_k=4, runs=1
        )
        assert all(rec.out_channels <= 64 for rec in recommendations)

    def test_invalid_arguments(self, template):
        with pytest.raises(ValueError):
            recommend_channel_counts(template, "jetson-tx2", "cudnn", top_k=0, runs=1)
        with pytest.raises(ValueError):
            recommend_channel_counts(template, "jetson-tx2", "cudnn", max_channels=0, runs=1)

    def test_recommendation_metadata(self, template):
        rec = recommend_channel_counts(template, "hikey-970", "acl-gemm", top_k=1, runs=1)[0]
        assert rec.device_name == "mali-g72"
        assert rec.library_name == "acl-gemm"
        assert rec.time_ms > 0


class TestLibraryRanking:
    def test_ranks_all_targets(self, template):
        ranking = best_library_for_layer(
            template, targets=list(iter_default_targets()), runs=1
        )
        assert len(ranking.entries) == 4
        device, library, time_ms = ranking.best
        assert time_ms > 0
        assert ranking.time_for(device, library) == time_ms

    def test_best_is_minimum(self, template):
        ranking = best_library_for_layer(
            template, targets=[("hikey-970", "acl-gemm"), ("hikey-970", "acl-direct")], runs=1
        )
        times = [entry[2] for entry in ranking.entries]
        assert ranking.best[2] == min(times)

    def test_gemm_beats_direct_on_this_shape(self, template):
        ranking = best_library_for_layer(
            template, targets=[("hikey-970", "acl-gemm"), ("hikey-970", "acl-direct")], runs=1
        )
        assert ranking.time_for("mali-g72", "acl-gemm") < ranking.time_for(
            "mali-g72", "acl-direct"
        )

    def test_unknown_target_lookup(self, template):
        ranking = best_library_for_layer(template, targets=[("hikey-970", "acl-gemm")], runs=1)
        with pytest.raises(KeyError):
            ranking.time_for("mali-g72", "cudnn")

    def test_empty_targets_rejected(self, template):
        with pytest.raises(ValueError):
            best_library_for_layer(template, targets=[], runs=1)


class TestDesignSpaceExplorer:
    def test_explore_covers_all_targets(self, template):
        explorer = DesignSpaceExplorer(
            targets=[("jetson-tx2", "cudnn"), ("hikey-970", "acl-gemm")], runs=1
        )
        exploration = explorer.explore(template, max_channels=96, top_k=2)
        assert set(exploration) == {("jetson-tx2", "cudnn"), ("hikey-970", "acl-gemm")}
        assert all(recommendations for recommendations in exploration.values())

    def test_sweet_spots_depend_on_target(self, template):
        """The paper's conclusion: specialise layer sizes per runtime target."""

        explorer = DesignSpaceExplorer(
            targets=[("jetson-tx2", "cudnn"), ("hikey-970", "acl-direct")], runs=1
        )
        assert explorer.sweet_spots_differ(template, max_channels=100)

    def test_format_report_mentions_targets(self, template):
        explorer = DesignSpaceExplorer(targets=[("jetson-tx2", "cudnn")], runs=1)
        report = explorer.format_report(template, max_channels=64)
        assert "cudnn on jetson-tx2" in report
        assert "ch/ms" in report

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(targets=[])

    def test_default_targets_match_paper(self):
        assert list(iter_default_targets()) == [
            ("hikey-970", "acl-gemm"),
            ("hikey-970", "acl-direct"),
            ("hikey-970", "tvm"),
            ("jetson-tx2", "cudnn"),
        ]
