"""Command-line entry point: regenerate paper figures and tables.

Usage::

    python -m repro.experiments list
    python -m repro.experiments targets
    python -m repro.experiments fig14
    python -m repro.experiments table1 table5 --json out.json
    python -m repro.experiments all --fast

Experiments run through the shared :class:`repro.api.Session`
(:func:`repro.experiments.base.default_session`), so a multi-experiment
invocation profiles each layer configuration once.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, List

from ..api.target import TargetError, Target
from ..gpusim.device import DEVICES
from ..libraries.base import LIBRARIES
from .base import ExperimentResult
from .registry import available_experiments, run_experiment

#: Experiments that are slow at full resolution; ``--fast`` coarsens them.
_SWEEP_EXPERIMENTS = {
    "fig02", "fig03", "fig04", "fig05", "fig07", "fig12", "fig14", "fig15", "fig20",
}
_HEATMAP_EXPERIMENTS = {
    "fig01", "fig06", "fig08", "fig09", "fig10", "fig11", "fig13", "fig16", "fig17", "fig19",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and tables on the simulated targets.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment identifiers (e.g. fig14 table1), 'all', 'list', or 'targets'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="coarsen channel sweeps and reduce repetitions for a quick run",
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    parser.add_argument(
        "--profile-store",
        metavar="PATH",
        help=(
            "persist layer measurements to a JSON-lines file and reuse them "
            "across invocations (a repeated experiment re-simulates nothing)"
        ),
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="also write a paper-vs-measured markdown report",
    )
    return parser


def _expand(requested: Iterable[str]) -> List[str]:
    expanded: List[str] = []
    for item in requested:
        if item.lower() == "all":
            expanded.extend(available_experiments())
        else:
            expanded.append(item.lower())
    return expanded


def _kwargs_for(experiment_id: str, fast: bool) -> dict:
    if not fast:
        return {}
    if experiment_id in _SWEEP_EXPERIMENTS:
        # An odd step keeps all residues modulo the vectorisation width in
        # the sweep, so level/staircase metrics survive the coarsening.
        return {"runs": 3, "step": 3 if experiment_id != "fig15" else 17}
    if experiment_id in _HEATMAP_EXPERIMENTS:
        return {"runs": 1}
    return {}


def print_targets() -> None:
    """List every registered device x library pair and its compatibility."""

    for device in DEVICES.available():
        for library in LIBRARIES.available():
            try:
                target = Target(device, library)
            except TargetError:
                print(f"{device:<12} {library:<12} incompatible (api mismatch)")
            else:
                print(f"{device:<12} {library:<12} ok ({target.device_spec.api})")


def run_many(experiment_ids: Iterable[str], fast: bool = False) -> List[ExperimentResult]:
    """Run several experiments and return their results."""

    return [
        run_experiment(experiment_id, **_kwargs_for(experiment_id, fast))
        for experiment_id in experiment_ids
    ]


def main(argv: List[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    # Attach (or, when the flag is absent, detach) the persistent store:
    # each invocation owns the shared session's store configuration, so a
    # prior programmatic call's store cannot leak into this run.
    from .base import set_default_profile_store

    set_default_profile_store(args.profile_store or None)

    if len(args.experiments) == 1 and args.experiments[0].lower() == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if len(args.experiments) == 1 and args.experiments[0].lower() == "targets":
        print_targets()
        return 0

    experiment_ids = _expand(args.experiments)
    results = []
    for experiment_id in experiment_ids:
        result = run_experiment(experiment_id, **_kwargs_for(experiment_id, args.fast))
        results.append(result)
        print("=" * 72)
        print(result.text)
        print("-" * 72)
        print(result.summary())
        print()

    if args.markdown:
        from .report import write_markdown_report

        write_markdown_report(results, args.markdown)
        print(f"wrote {args.markdown}")

    if args.json:
        payload = [
            {
                "experiment_id": result.experiment_id,
                "title": result.title,
                "description": result.description,
                "measured": result.measured,
                "paper": result.paper,
                "data": result.data,
            }
            for result in results
        ]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
