"""Tests for events, profilers, the measurement runner and latency tables."""

import pytest

from repro.profiling import (
    CudaEventProfiler,
    KernelEvent,
    LatencyTable,
    LatencyTableError,
    OpenCLProfiler,
    ProfileRunner,
    build_latency_table,
    profile_runs,
    profiler_for_device,
    prune_distances,
)


class TestKernelEvent:
    def make_event(self, **overrides):
        defaults = dict(
            kernel_name="gemm_mm",
            queued_at_s=0.0,
            started_at_s=0.001,
            finished_at_s=0.005,
            work_items=100,
            workgroup=(4, 4, 1),
            memory_footprint_bytes=1024,
        )
        defaults.update(overrides)
        return KernelEvent(**defaults)

    def test_duration(self):
        assert self.make_event().duration_s == pytest.approx(0.004)

    def test_queue_delay(self):
        assert self.make_event().queue_delay_s == pytest.approx(0.001)

    def test_non_monotonic_timestamps_rejected(self):
        with pytest.raises(ValueError):
            self.make_event(finished_at_s=0.0005)


class TestProfilers:
    def test_opencl_profiler_requires_opencl_device(self, tx2):
        with pytest.raises(ValueError):
            OpenCLProfiler(tx2)

    def test_cuda_profiler_requires_cuda_device(self, hikey):
        with pytest.raises(ValueError):
            CudaEventProfiler(hikey)

    def test_profiler_for_device_dispatch(self, hikey, tx2):
        assert isinstance(profiler_for_device(hikey), OpenCLProfiler)
        assert isinstance(profiler_for_device(tx2), CudaEventProfiler)

    def test_events_cover_all_kernels(self, hikey, acl_gemm, layer16):
        plan = acl_gemm.plan_with_channels(layer16, 92, hikey)
        run = profile_runs(hikey, plan, runs=1)[0]
        assert run.kernel_names() == plan.kernel_names()

    def test_events_are_ordered_in_time(self, hikey, acl_gemm, layer16):
        plan = acl_gemm.plan(layer16, hikey)
        run = profile_runs(hikey, plan, runs=1)[0]
        finish_times = [event.finished_at_s for event in run.events]
        assert finish_times == sorted(finish_times)

    def test_job_dispatch_appears_as_queue_delay(self, hikey, acl_gemm, layer16):
        plan = acl_gemm.plan(layer16, hikey)
        run = profile_runs(hikey, plan, runs=1)[0]
        gemm_event = run.events_named("gemm_mm")[0]
        assert gemm_event.queue_delay_s > hikey.job_dispatch_overhead_s * 0.5

    def test_total_time_close_to_simulator(self, hikey, acl_gemm, layer16, hikey_simulator):
        plan = acl_gemm.plan_with_channels(layer16, 96, hikey)
        run = profile_runs(hikey, plan, runs=1)[0]
        simulated = hikey_simulator.run_time_ms(plan)
        assert run.total_time_ms == pytest.approx(simulated, rel=0.1)

    def test_noise_is_reproducible(self, hikey, acl_gemm, layer16):
        plan = acl_gemm.plan(layer16, hikey)
        first = profile_runs(hikey, plan, runs=3)
        second = profile_runs(hikey, plan, runs=3)
        assert [run.total_time_ms for run in first] == [run.total_time_ms for run in second]

    def test_noise_varies_between_runs(self, hikey, acl_gemm, layer16):
        plan = acl_gemm.plan(layer16, hikey)
        times = [run.total_time_ms for run in profile_runs(hikey, plan, runs=5)]
        assert len(set(times)) > 1

    def test_durations_by_kernel(self, hikey, acl_gemm, layer16):
        plan = acl_gemm.plan_with_channels(layer16, 92, hikey)
        run = profile_runs(hikey, plan, runs=1)[0]
        durations = run.durations_by_kernel()
        assert durations["gemm_mm"] > durations["im2col3x3_nhwc"]

    def test_invalid_run_count(self, hikey, acl_gemm, layer16):
        plan = acl_gemm.plan(layer16, hikey)
        with pytest.raises(ValueError):
            profile_runs(hikey, plan, runs=0)


class TestProfileRunner:
    def test_create_by_names(self):
        runner = ProfileRunner.create("hikey-970", "acl-gemm", runs=2)
        assert runner.device.name == "mali-g72"
        assert runner.library.name == "acl-gemm"

    def test_measurement_fields(self, gemm_runner, layer16):
        measurement = gemm_runner.measure(layer16, 96)
        assert measurement.out_channels == 96
        assert measurement.min_time_ms <= measurement.median_time_ms <= measurement.max_time_ms
        assert measurement.job_count == 1
        assert measurement.runs == 3

    def test_measurement_cached(self, gemm_runner, layer16):
        before = gemm_runner.cache_size()
        gemm_runner.measure(layer16, 50)
        after_first = gemm_runner.cache_size()
        gemm_runner.measure(layer16, 50)
        assert gemm_runner.cache_size() == after_first == before + 1

    def test_invalid_channels_rejected(self, gemm_runner, layer16):
        with pytest.raises(ValueError):
            gemm_runner.measure(layer16, 0)

    def test_measure_channels_order_preserved(self, gemm_runner, layer16):
        measurements = gemm_runner.measure_channels(layer16, [8, 4, 12])
        assert [m.out_channels for m in measurements] == [8, 4, 12]

    def test_sweep_covers_range(self, gemm_runner, layer16):
        measurements = gemm_runner.sweep(layer16, min_channels=120, max_channels=128, step=4)
        assert [m.out_channels for m in measurements] == [120, 124, 128]

    def test_sweep_beyond_layer_rejected(self, gemm_runner, layer16):
        with pytest.raises(ValueError):
            gemm_runner.sweep(layer16, max_channels=200)

    def test_spread_is_small(self, gemm_runner, layer16):
        measurement = gemm_runner.measure(layer16, 96)
        assert measurement.spread < 1.2


class TestLatencyTable:
    def test_add_and_query(self):
        table = LatencyTable("l", "d", "lib")
        table.add(10, 5.0)
        table.add(20, 8.0)
        assert table.time_ms(10) == 5.0
        assert 10 in table and 15 not in table
        assert table.channel_counts == [10, 20]
        assert table.max_channels == 20

    def test_speedup_relative_to_max(self):
        table = LatencyTable("l", "d", "lib")
        table.add(10, 5.0)
        table.add(20, 10.0)
        assert table.speedup(10) == pytest.approx(2.0)

    def test_best_channels_within_budget(self):
        table = LatencyTable("l", "d", "lib")
        for channels, time in ((10, 5.0), (20, 9.0), (30, 14.0)):
            table.add(channels, time)
        assert table.best_channels_within(10.0) == 20
        assert table.best_channels_within(4.0) is None

    def test_invalid_entries_rejected(self):
        table = LatencyTable("l", "d", "lib")
        with pytest.raises(ValueError):
            table.add(0, 1.0)
        with pytest.raises(ValueError):
            table.add(1, 0.0)

    def test_missing_channel_raises(self):
        table = LatencyTable("l", "d", "lib")
        table.add(10, 5.0)
        with pytest.raises(KeyError):
            table.time_ms(11)

    def test_empty_table_raises_named_error(self):
        table = LatencyTable("conv3_2", "d", "lib")
        with pytest.raises(LatencyTableError, match="conv3_2"):
            table.max_channels
        with pytest.raises(LatencyTableError, match="conv3_2"):
            table.channel_counts

    def test_build_with_empty_sweep_rejected(self, gemm_runner, layer16):
        with pytest.raises(LatencyTableError, match="empty channel sweep"):
            build_latency_table(gemm_runner, layer16, channel_counts=[])

    def test_build_latency_table(self, gemm_runner, layer16):
        table = build_latency_table(gemm_runner, layer16, channel_counts=[64, 96, 128])
        assert len(table) == 3
        assert table.device_name == "mali-g72"
        counts, times = table.as_series()
        assert counts == [64, 96, 128]
        assert all(time > 0 for time in times)

    def test_prune_distances_clamped(self):
        assert prune_distances(64, [1, 63, 127]) == [63, 1, 1]

    def test_prune_distances_negative_rejected(self):
        with pytest.raises(ValueError):
            prune_distances(64, [-1])
