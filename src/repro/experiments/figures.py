"""Generators for every figure of the paper's evaluation (Figures 1-20).

Each ``figNN`` function regenerates the data behind the corresponding
figure: the same layer(s), the same library and device, the same pruning
distances.  Absolute milliseconds come from the analytical simulator, so
they are not expected to match the authors' boards; the *shape* metrics
(step positions and ratios, number of levels, slowdown/speedup factors)
are what EXPERIMENTS.md compares against the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.speedup import (
    FIGURE1_PRUNE_DISTANCES,
    PAPER_PRUNE_DISTANCES,
    TVM_PRUNE_DISTANCES,
)
from ..analysis.curves import curve_from_table
from ..api.session import Session
from ..api.target import Target
from ..core.staircase import cluster_levels
from ..gpusim.metrics import relative_system_counters
from ..gpusim.simulator import GpuSimulator
from ..gpusim.device import DEVICES
from ..libraries.base import LIBRARIES
from .base import (
    ExperimentResult,
    execute_plan,
    heatmap_experiment,
    resnet_layer,
    sweep_experiment,
)


# ---------------------------------------------------------------------------
# Heatmap figures
# ---------------------------------------------------------------------------
def fig01(runs: int = 3, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 1: maximum slowdown per ResNet-50 layer, ACL GEMM on Mali G72."""

    return heatmap_experiment(
        "fig01",
        "Potential slowdown of pruned ResNet-50 layers (ACL GEMM, Mali G72)",
        "Maximum slowdown over pruning distances 1..d for each profiled layer; "
        "the paper reports up to ~2x slowdown when pruning only 12% of channels.",
        model="resnet50",
        library="acl-gemm",
        device="hikey-970",
        prune_distances=FIGURE1_PRUNE_DISTANCES,
        metric="slowdown",
        paper={"max_value": 1.9, "min_value": 0.8},
        runs=runs,
        session=session,
    )


def fig06(runs: int = 3, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 6: speedups per ResNet-50 layer and distance, cuDNN on Jetson TX2."""

    return heatmap_experiment(
        "fig06",
        "Speedups from pruning ResNet-50 layers (cuDNN, Jetson TX2)",
        "Maximum speedup within each pruning distance; the paper reports 1.0x "
        "for small distances and up to 3.3x at a distance of 127 channels.",
        model="resnet50",
        library="cudnn",
        device="jetson-tx2",
        prune_distances=PAPER_PRUNE_DISTANCES,
        metric="speedup",
        paper={"max_value": 3.3, "min_value": 1.0},
        runs=runs,
        session=session,
    )


def fig08(runs: int = 3, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 8: speedups per VGG-16 layer, cuDNN on Jetson TX2."""

    return heatmap_experiment(
        "fig08",
        "Speedups from pruning VGG-16 layers (cuDNN, Jetson TX2)",
        "The paper reports up to 2.8x at a pruning distance of 127 channels.",
        model="vgg16",
        library="cudnn",
        device="jetson-tx2",
        prune_distances=PAPER_PRUNE_DISTANCES,
        metric="speedup",
        paper={"max_value": 2.8, "min_value": 0.9},
        runs=runs,
        session=session,
    )


def fig09(runs: int = 3, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 9: speedups per AlexNet layer, cuDNN on Jetson TX2."""

    return heatmap_experiment(
        "fig09",
        "Speedups from pruning AlexNet layers (cuDNN, Jetson TX2)",
        "The paper reports modest speedups (up to 1.4x).",
        model="alexnet",
        library="cudnn",
        device="jetson-tx2",
        prune_distances=PAPER_PRUNE_DISTANCES,
        metric="speedup",
        paper={"max_value": 1.4, "min_value": 1.0},
        runs=runs,
        session=session,
    )


def fig10(runs: int = 3, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 10: speedups per ResNet-50 layer, ACL Direct on HiKey 970."""

    return heatmap_experiment(
        "fig10",
        "Speedups from pruning ResNet-50 layers (ACL Direct convolution, HiKey 970)",
        "Pruning one channel causes slowdowns as low as 0.2x for 1x1 layers; "
        "deep pruning reaches ~17x.",
        model="resnet50",
        library="acl-direct",
        device="hikey-970",
        prune_distances=PAPER_PRUNE_DISTANCES,
        metric="speedup",
        paper={"max_value": 16.9, "min_value": 0.2},
        runs=runs,
        session=session,
    )


def fig11(runs: int = 3, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 11: speedups per VGG-16 layer, ACL Direct on HiKey 970."""

    return heatmap_experiment(
        "fig11",
        "Speedups from pruning VGG-16 layers (ACL Direct convolution, HiKey 970)",
        "The paper reports up to 14.7x at a pruning distance of 127 channels.",
        model="vgg16",
        library="acl-direct",
        device="hikey-970",
        prune_distances=PAPER_PRUNE_DISTANCES,
        metric="speedup",
        paper={"max_value": 14.7, "min_value": 0.8},
        runs=runs,
        session=session,
    )


def fig13(runs: int = 3, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 13: speedups per ResNet-50 layer, ACL GEMM on HiKey 970."""

    return heatmap_experiment(
        "fig13",
        "Speedups from pruning ResNet-50 layers (ACL GEMM, HiKey 970)",
        "No slowdowns near the original size; up to ~5x at a distance of 127.",
        model="resnet50",
        library="acl-gemm",
        device="hikey-970",
        prune_distances=PAPER_PRUNE_DISTANCES,
        metric="speedup",
        paper={"max_value": 5.2, "min_value": 0.8},
        runs=runs,
        session=session,
    )


def fig16(runs: int = 3, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 16: speedups per VGG-16 layer, ACL GEMM on HiKey 970."""

    return heatmap_experiment(
        "fig16",
        "Speedups from pruning VGG-16 layers (ACL GEMM, HiKey 970)",
        "The paper reports up to 4.2x at a pruning distance of 127 channels.",
        model="vgg16",
        library="acl-gemm",
        device="hikey-970",
        prune_distances=PAPER_PRUNE_DISTANCES,
        metric="speedup",
        paper={"max_value": 4.2, "min_value": 1.0},
        runs=runs,
        session=session,
    )


def fig17(runs: int = 3, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 17: speedups per AlexNet layer, ACL GEMM on HiKey 970."""

    return heatmap_experiment(
        "fig17",
        "Speedups from pruning AlexNet layers (ACL GEMM, HiKey 970)",
        "The paper reports up to 2.5x at a pruning distance of 127 channels.",
        model="alexnet",
        library="acl-gemm",
        device="hikey-970",
        prune_distances=PAPER_PRUNE_DISTANCES,
        metric="speedup",
        paper={"max_value": 2.5, "min_value": 1.0},
        runs=runs,
        session=session,
    )


def fig19(runs: int = 3, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 19: speedups per ResNet-50 layer, TVM on HiKey 970."""

    return heatmap_experiment(
        "fig19",
        "Speedups from pruning ResNet-50 layers (TVM, HiKey 970)",
        "TVM's untuned fallbacks cause near-zero 'speedups' (dramatic slowdowns) "
        "for some layers and distances, and up to ~14x speedups for others.",
        model="resnet50",
        library="tvm",
        device="hikey-970",
        prune_distances=TVM_PRUNE_DISTANCES,
        metric="speedup",
        paper={"max_value": 13.9, "min_value": 0.0},
        runs=runs,
        session=session,
    )


# ---------------------------------------------------------------------------
# Latency-vs-channels sweep figures
# ---------------------------------------------------------------------------
def fig02(runs: int = 5, step: int = 1, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 2: staircase for a large ResNet-50 layer, cuDNN on Jetson TX2."""

    return sweep_experiment(
        "fig02",
        "Staircase of inference time vs channels (ResNet-50 L26, cuDNN, Jetson TX2)",
        "A ~1000-filter layer shows a clean staircase: latency falls in steps as "
        "channels are pruned.",
        layer_index=26,
        library="cudnn",
        device="jetson-tx2",
        paper={"spread": 8.0},
        runs=runs,
        step=step,
        session=session,
    )


def fig03(runs: int = 5, step: int = 1, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 3: two parallel staircases, ResNet-50 L16, ACL GEMM on HiKey 970."""

    return sweep_experiment(
        "fig03",
        "Two parallel staircases (ResNet-50 L16, ACL GEMM, HiKey 970)",
        "The ACL GEMM kernel-split heuristic creates a second, slower staircase.",
        layer_index=16,
        library="acl-gemm",
        device="hikey-970",
        paper={"spread": 6.0},
        runs=runs,
        step=step,
        min_channels=16,
        session=session,
    )


def fig04(runs: int = 5, step: int = 1, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 4: cuDNN staircase for ResNet-50 L16 on Jetson TX2 (1.3x step)."""

    result = sweep_experiment(
        "fig04",
        "cuDNN staircase with a 1.3x step (ResNet-50 L16, Jetson TX2)",
        "Latency is flat above 97 channels, drops at 96 and again at 64.",
        layer_index=16,
        library="cudnn",
        device="jetson-tx2",
        runs=runs,
        step=step,
        extra_channels=(64, 96, 97, 128),
        session=session,
    )
    counts = result.data["channel_counts"]
    times = result.data["times_ms"]
    series = dict(zip(counts, times))
    result.measured["step_ratio_96"] = series[128] / series[96]
    result.paper["step_ratio_96"] = 1.3
    result.measured["step_ratio_64"] = series[96] / series[64]
    return result


def fig05(runs: int = 5, step: int = 1, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 5: cuDNN staircase for ResNet-50 L14 (512 filters) on Jetson TX2."""

    return sweep_experiment(
        "fig05",
        "cuDNN staircase with uneven steps (ResNet-50 L14, Jetson TX2)",
        "More stairs than Figure 4 (larger layer) with uneven gaps between them.",
        layer_index=14,
        library="cudnn",
        device="jetson-tx2",
        paper={"spread": 7.0},
        runs=runs,
        step=step,
        session=session,
    )


def fig07(runs: int = 5, step: int = 1, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 7: the same staircase on the Jetson Nano (ResNet-50 L14).

    The comparison is expressed as a declarative one-step
    :class:`repro.api.Plan` fanning one layer across both Jetson
    targets, executed through the session's executor backend — the same
    JSON-serializable job ``repro-experiments run-plan`` runs.
    """

    from ..api.plan import Plan

    ref = resnet_layer(14, session=session)
    nano = Target("jetson-nano", "cudnn", runs=runs)
    tx2 = Target("jetson-tx2", "cudnn", runs=runs)
    plan = Plan()
    sweep_step_node = plan.sweep((nano, tx2), ref.spec, sweep_step=step)
    table = execute_plan(plan, session=session)[sweep_step_node.id]
    curve = curve_from_table(table.profile(nano, ref.spec.name).table, ref.label)
    tx2_curve = curve_from_table(table.profile(tx2, ref.spec.name).table, ref.label)

    fast, slow, gap = curve.largest_adjacent_gap()
    measured = {
        "min_time_ms": curve.min_time_ms,
        "max_time_ms": curve.max_time_ms,
        "spread": curve.spread,
        "largest_adjacent_gap": gap,
        "nano_vs_tx2_scaling": curve.max_time_ms / tx2_curve.max_time_ms,
    }
    data = {
        "layer": ref.label,
        "device": curve.device_name,
        "library": curve.library_name,
        "channel_counts": list(curve.channel_counts),
        "times_ms": list(curve.times_ms),
        "largest_gap": {"fast_channels": fast, "slow_channels": slow, "ratio": gap},
        "tx2_reference_max_ms": tx2_curve.max_time_ms,
        "per_target_rows": list(table.rows),
    }
    return ExperimentResult(
        experiment_id="fig07",
        title="cuDNN staircase on the Jetson Nano (ResNet-50 L14)",
        description=(
            "The Nano shows the same pattern as the TX2, scaled by its lower "
            "compute throughput (similar GPU architectures)."
        ),
        data=data,
        text=curve.format(),
        measured=measured,
        paper={"nano_vs_tx2_scaling": 3.5},
    )


def fig12(runs: int = 5, step: int = 1, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 12: three alternating execution levels, ACL Direct, HiKey 970."""

    result = sweep_experiment(
        "fig12",
        "Three execution levels (ResNet-50 L14, ACL Direct convolution, HiKey 970)",
        "The workgroup-size heuristic produces three alternating latency levels.",
        layer_index=14,
        library="acl-direct",
        device="hikey-970",
        paper={"level_ratio": 1.9, "levels": 3.0},
        runs=runs,
        step=step,
        min_channels=64,
        session=session,
    )
    times = result.data["times_ms"]
    tail = times[-min(len(times), 96):]
    levels = cluster_levels(tail, relative_tolerance=0.15)
    result.measured["levels"] = float(len(levels))
    result.measured["level_ratio"] = max(levels) / min(levels)
    result.data["level_times_ms"] = levels
    return result


def fig14(runs: int = 5, step: int = 1, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 14: ACL GEMM parallel staircases with annotated points (L16)."""

    result = sweep_experiment(
        "fig14",
        "ACL GEMM parallel staircases with vec4 groups (ResNet-50 L16, HiKey 970)",
        "Channels 93-96 run much faster than 92 or 97; 78 runs 1.83x faster "
        "than 76 despite having more channels.",
        layer_index=16,
        library="acl-gemm",
        device="hikey-970",
        runs=runs,
        step=step,
        min_channels=16,
        extra_channels=(76, 78, 92, 93, 96, 97),
        session=session,
    )
    series = dict(zip(result.data["channel_counts"], result.data["times_ms"]))
    result.measured["gap_92_vs_93"] = series[92] / series[93]
    result.measured["gap_97_vs_96"] = series[97] / series[96]
    result.measured["speedup_78_vs_76"] = series[76] / series[78]
    result.paper.update(
        {"gap_92_vs_93": 23.0 / 14.0, "gap_97_vs_96": 23.0 / 14.0, "speedup_78_vs_76": 1.83}
    )
    return result


def fig15(runs: int = 5, step: int = 4, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 15: large latency gap between 2024 and 2036 channels (L45)."""

    result = sweep_experiment(
        "fig15",
        "Large gap between nearby channel counts (ResNet-50 L45, ACL GEMM, HiKey 970)",
        "The paper measures 19.69 ms at 2036 channels vs 7.67 ms at 2024 (2.57x).",
        layer_index=45,
        library="acl-gemm",
        device="hikey-970",
        runs=runs,
        step=step,
        min_channels=1024,
        extra_channels=(2024, 2036),
        session=session,
    )
    series = dict(zip(result.data["channel_counts"], result.data["times_ms"]))
    result.measured["gap_2036_vs_2024"] = series[2036] / series[2024]
    result.paper["gap_2036_vs_2024"] = 2.57
    return result


def fig20(runs: int = 5, step: int = 1, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 20: TVM fallback spikes for ResNet-50 L14 on HiKey 970."""

    result = sweep_experiment(
        "fig20",
        "TVM untuned-configuration spikes (ResNet-50 L14, HiKey 970)",
        "Most channel counts use a tuned schedule; a significant fraction fall "
        "back to a direct-convolution-style schedule roughly 10x slower.",
        layer_index=14,
        library="tvm",
        device="hikey-970",
        paper={"local_spike_ratio": 10.5},
        runs=runs,
        step=step,
        session=session,
    )
    times = result.data["times_ms"]
    # Spikes are measured against the tuned neighbourhood (window of 17
    # points), since the absolute time also grows with the channel count.
    spike = 1.0
    slow_points = 0
    for index, time in enumerate(times):
        window = times[max(0, index - 8): index + 9]
        local_floor = min(window)
        spike = max(spike, time / local_floor)
        if time > 3.0 * local_floor:
            slow_points += 1
    result.measured["local_spike_ratio"] = spike
    result.measured["fallback_fraction"] = slow_points / len(times)
    result.data["fallback_fraction"] = result.measured["fallback_fraction"]
    return result


# ---------------------------------------------------------------------------
# Figure 18: system-level counters from the GPU simulator
# ---------------------------------------------------------------------------
def fig18(runs: int = 5, session: Optional[Session] = None) -> ExperimentResult:
    """Figure 18: relative system-level counters for 92/93/96/97 channels."""

    ref = resnet_layer(16, session=session)
    device = DEVICES.get("hikey-970")
    library = LIBRARIES.create("acl-gemm")
    simulator = GpuSimulator(device)
    results = {}
    for channels in (92, 93, 96, 97):
        plan = library.plan_with_channels(ref.spec, channels, device)
        results[f"{channels} Channels"] = simulator.simulate(plan)
    rows = relative_system_counters(results, baseline_label="93 Channels")

    lines = [
        "Relative system-level results (baseline: 93 channels)",
        f"{'Configuration':>16} {'Jobs':>6} {'CtrlRd':>8} {'CtrlWr':>8} {'IRQs':>6} {'Runtime':>9}",
    ]
    data: Dict[str, Dict[str, float]] = {}
    for row in rows:
        data[row.label] = row.as_dict()
        lines.append(
            f"{row.label:>16} {row.jobs:>6.2f} {row.control_register_reads:>8.2f} "
            f"{row.control_register_writes:>8.2f} {row.interrupts:>6.2f} {row.runtime:>9.2f}"
        )

    measured = {
        "jobs_92_relative": data["92 Channels"]["jobs"],
        "jobs_97_relative": data["97 Channels"]["jobs"],
        "jobs_96_relative": data["96 Channels"]["jobs"],
        "runtime_92_relative": data["92 Channels"]["runtime"],
        "runtime_97_relative": data["97 Channels"]["runtime"],
    }
    paper = {
        "jobs_92_relative": 2.0,
        "jobs_97_relative": 2.0,
        "jobs_96_relative": 1.0,
        "runtime_92_relative": 23.0 / 14.0,
        "runtime_97_relative": 23.0 / 14.0,
    }
    return ExperimentResult(
        experiment_id="fig18",
        title="Relative system-level counters for the GEMM split (ResNet-50 L16)",
        description=(
            "Extra GPU jobs are dispatched for 92 and 97 channels; control register "
            "traffic and interrupts scale with the job count, and runtime roughly "
            "doubles relative to the single-job configurations (93 and 96 channels)."
        ),
        data={"relative": data, "runs": runs},
        text="\n".join(lines),
        measured=measured,
        paper=paper,
    )
