"""Benchmarks for the paper's Section V proposal: performance-aware pruning."""

from conftest import run_benchmarked

from repro.core import PerformanceAwarePruner
from repro.models import MODELS


def test_proposal_comparison(benchmark):
    """Performance-aware vs uninstructed pruning across all four targets."""

    result = run_benchmarked(benchmark, "proposal_comparison", fraction=0.12, runs=1)
    rows = result.data["rows"]
    assert any(row["uninstructed_speedup"] < 1.0 for row in rows)
    assert all(row["aware_speedup"] >= 0.999 for row in rows)


def test_proposal_pareto_frontier(benchmark):
    """Profiling collapses the search space to a latency/accuracy frontier."""

    result = run_benchmarked(benchmark, "proposal_pareto", runs=1)
    assert result.measured["frontier_size"] >= 1
    assert result.measured["best_speedup"] > 1.5


def test_latency_budget_compression(benchmark):
    """Greedy latency-budget compression of a ResNet-50 layer subset."""

    network = MODELS.create("resnet50")
    layer_indices = [15, 16, 24]

    def compress():
        pruner = PerformanceAwarePruner("hikey-970", "acl-gemm", runs=1)
        baseline = pruner.network_latency_ms(network, layer_indices=layer_indices)
        return pruner.prune_for_latency(
            network, baseline * 0.75, layer_indices=layer_indices
        ), baseline

    (outcome, baseline) = benchmark.pedantic(compress, rounds=1, iterations=1)
    assert outcome.latency_ms <= baseline * 0.7525
    assert outcome.predicted_accuracy > 0.5


def test_layer_profile_sweep(benchmark):
    """Cost of profiling one 512-filter layer across every channel count."""

    network = MODELS.create("resnet50")
    layer = network.conv_layer(14).spec

    def sweep():
        pruner = PerformanceAwarePruner("jetson-tx2", "cudnn", runs=3)
        return pruner.profile_layer(layer, 14)

    profile = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(profile.table) == 512
