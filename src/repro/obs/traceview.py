"""Offline reconstruction of span trees from TraceWriter JSONL.

:class:`~repro.obs.trace.TraceWriter` appends one finished span per
line, flock-guarded so a serving process and its fleet workers can
share a file.  The result is an interleaved, multi-process log: the
client's ``client.submit`` span, the server's ``queue.job`` span, the
executor's publish span and the worker's ``worker.measure`` spans of
one submission all carry the same ``trace`` id but arrive in completion
order from different processes.

This module turns that log back into trees:

:func:`load_spans`
    Parse the JSONL, tolerating truncated/garbage lines (a crash mid
    ``write`` must not make the whole file unreadable).
:func:`list_traces`
    One summary row per trace id — root span name, span count, wall
    duration, error count — newest first (the ``trace ls`` verb).
:func:`build_tree`
    Stitch one trace's spans into parent/child trees.  Spans whose
    parent never got written (the parent process died, or the parent is
    an adopted remote context recorded elsewhere) surface as roots
    rather than vanishing.
:func:`render_tree` / :func:`render_trace`
    Indented timing view with per-span durations, status flags and
    attributes (the ``trace show`` verb).
:func:`exemplar_references`
    Cross-reference a metrics snapshot: every histogram bucket whose
    exemplar points at the trace, so ``trace show`` can say *this*
    trace is the one the slow ``claim_wait`` bucket flagged.

Everything here is a pure function over already-written artifacts;
nothing feeds back into measurement.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = [
    "TraceViewError",
    "build_tree",
    "exemplar_references",
    "list_traces",
    "load_spans",
    "render_trace",
    "render_tree",
]


class TraceViewError(ValueError):
    """Raised for unreadable trace files or unknown trace ids."""


def load_spans(path: Union[str, Path]) -> List[dict]:
    """All well-formed span records in ``path``, file order.

    Lines that are not valid JSON objects with ``name``/``trace``/
    ``span`` fields are skipped: a worker killed mid-append leaves a
    truncated tail line, and one bad line must not take down ``trace
    show`` for every other trace in the file.
    """

    trace_path = Path(path)
    if not trace_path.exists():
        raise TraceViewError(f"trace file not found: {trace_path}")
    spans: List[dict] = []
    with open(trace_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            if not all(isinstance(record.get(key), str) for key in ("name", "trace", "span")):
                continue
            spans.append(record)
    return spans


def list_traces(spans: Sequence[Mapping]) -> List[dict]:
    """One summary per trace id, newest first.

    ``root`` is the name of the earliest-starting parentless span (or
    the earliest span at all when every recorded span is a child of an
    unrecorded remote parent); ``duration_ms`` is the wall window from
    first span start to last span end.
    """

    by_trace: Dict[str, List[Mapping]] = {}
    order: List[str] = []
    for span in spans:
        trace_id = str(span["trace"])
        if trace_id not in by_trace:
            by_trace[trace_id] = []
            order.append(trace_id)
        by_trace[trace_id].append(span)
    summaries = []
    for trace_id in order:
        members = by_trace[trace_id]
        started = [float(span.get("started_at", 0.0)) for span in members]
        ends = [
            float(span.get("started_at", 0.0)) + float(span.get("duration_ms") or 0.0) / 1e3
            for span in members
        ]
        roots = [span for span in members if "parent" not in span] or list(members)
        root = min(roots, key=lambda span: float(span.get("started_at", 0.0)))
        summaries.append({
            "trace": trace_id,
            "root": str(root["name"]),
            "spans": len(members),
            "errors": sum(1 for span in members if span.get("status") == "error"),
            "started_at": min(started),
            "duration_ms": (max(ends) - min(started)) * 1e3,
        })
    summaries.sort(key=lambda row: (-row["started_at"], row["trace"]))
    return summaries


def build_tree(spans: Sequence[Mapping], trace_id: str) -> List[dict]:
    """The trace's spans stitched into root trees.

    Returns a list of root nodes ``{"span": record, "children": [...]}``,
    each level sorted by start time (ties broken by span id so renders
    are stable).  A span whose ``parent`` id never appears in the file
    — its parent lived in a process that didn't share the writer, or
    died before finishing — becomes a root instead of being dropped,
    so partial traces still render.
    """

    members = [span for span in spans if str(span["trace"]) == str(trace_id)]
    if not members:
        raise TraceViewError(f"no spans for trace {trace_id!r}")
    nodes: Dict[str, dict] = {}
    for span in members:
        # Duplicate span ids (a retried write) keep the first record.
        nodes.setdefault(str(span["span"]), {"span": span, "children": []})
    roots: List[dict] = []
    for node in nodes.values():
        parent_id = node["span"].get("parent")
        parent = nodes.get(str(parent_id)) if parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)

    def sort_key(node: dict) -> tuple:
        span = node["span"]
        return (float(span.get("started_at", 0.0)), str(span["span"]))

    def sort_children(node: dict) -> None:
        node["children"].sort(key=sort_key)
        for child in node["children"]:
            sort_children(child)

    roots.sort(key=sort_key)
    for root in roots:
        sort_children(root)
    return roots


def _format_duration(duration_ms: Optional[float]) -> str:
    if duration_ms is None:
        return "?"
    if duration_ms >= 1000.0:
        return f"{duration_ms / 1000.0:.2f}s"
    return f"{duration_ms:.1f}ms"


def _render_node(node: dict, depth: int, lines: List[str]) -> None:
    span = node["span"]
    flag = " !" if span.get("status") == "error" else ""
    attrs = span.get("attrs") or {}
    suffix = ""
    if attrs:
        rendered = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
        suffix = f"  [{rendered}]"
    lines.append(
        f"{'  ' * depth}{span['name']}  "
        f"{_format_duration(span.get('duration_ms'))}{flag}{suffix}"
    )
    for child in node["children"]:
        _render_node(child, depth + 1, lines)


def render_tree(roots: Sequence[dict]) -> str:
    """Indented timing view of :func:`build_tree` output."""

    lines: List[str] = []
    for root in roots:
        _render_node(root, 0, lines)
    return "\n".join(lines)


def exemplar_references(snapshot: Mapping[str, dict], trace_id: str) -> List[dict]:
    """Histogram buckets whose exemplar points at ``trace_id``.

    Rows are ``{"metric", "labels", "le", "value"}`` — enough for
    ``trace show`` to report "this trace is the exemplar for the
    ``repro_lease_claim_wait_seconds`` le=5 bucket (4.2s)".
    """

    references: List[dict] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        for entry in family.get("series", []):
            for edge, exemplar_trace, value in entry.get("exemplars", []):
                if str(exemplar_trace) == str(trace_id):
                    references.append({
                        "metric": name,
                        "labels": dict(entry.get("labels", {})),
                        "le": str(edge),
                        "value": float(value),
                    })
    return references


def render_trace(
    spans: Sequence[Mapping],
    trace_id: str,
    snapshot: Optional[Mapping[str, dict]] = None,
) -> str:
    """The full ``trace show`` body: span tree plus exemplar cross-refs."""

    roots = build_tree(spans, trace_id)
    total = sum(1 for span in spans if str(span["trace"]) == str(trace_id))
    lines = [f"trace {trace_id}  ({total} spans)", render_tree(roots)]
    if snapshot is not None:
        references = exemplar_references(snapshot, trace_id)
        if references:
            lines.append("")
            lines.append("metric exemplars referencing this trace:")
            for ref in references:
                labels = ",".join(f'{k}="{v}"' for k, v in sorted(ref["labels"].items()))
                rendered = f"{{{labels}}}" if labels else ""
                lines.append(
                    f"  {ref['metric']}{rendered} le={ref['le']}  value={ref['value']:g}"
                )
    return "\n".join(lines) + "\n"
