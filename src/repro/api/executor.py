"""Pluggable execution backends for :class:`~repro.api.plan.Plan` graphs.

A plan says *what* to run; an executor decides *how*.  All backends
produce bitwise-identical results for the same plan, session seed and
profile store, because every measurement derives its perturbation from
the counter-based splitmix64 noise stream keyed on the configuration
itself (see :mod:`repro.profiling.profilers`) — not on execution order,
batch composition or process identity.  The backends differ only in how
the measurement workload reaches the simulator:

``serial``
    Legacy semantics: steps run in insertion order, each measurement
    pass per (target, layer) exactly as :class:`~repro.api.Session`
    always did.

``batched``
    Each step's whole measurement workload is planned up front and
    pushed through one cross-layer
    :meth:`~repro.profiling.runner.ProfileRunner.prefetch` /
    :func:`~repro.gpusim.batch.simulate_batch` pass per target.

``process``
    The workload of *all* steps is fanned out across worker processes
    with :class:`concurrent.futures.ProcessPoolExecutor` — one task per
    independent (target, layer) sweep — then adopted into the parent
    session's cache and profile store before the steps run against warm
    caches.

Executors register in the :data:`EXECUTORS` registry, so third-party
backends plug in the same way devices and libraries do.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Set, Tuple

from ..models.layers import ConvLayerSpec
from ..profiling.runner import Measurement, ProfileRunner
from .pipeline import PruningRequest
from .plan import Plan, Step
from .registry import Registry, UnknownPluginError
from .target import Target

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Session


class UnknownExecutorError(UnknownPluginError):
    """Raised when an executor name is not registered."""


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed."""


#: The executor registry; ``EXECUTORS.create(name, jobs=...)`` builds a
#: backend instance.
EXECUTORS: Registry[type] = Registry("executor", error_cls=UnknownExecutorError)


def resolve_executor(executor, jobs: Optional[int] = None):
    """Coerce a name or instance into an executor object."""

    if isinstance(executor, str):
        return EXECUTORS.create(executor, jobs=jobs)
    if hasattr(executor, "execute"):
        return executor
    raise TypeError(
        f"executor must be a registered name or provide .execute(), got {executor!r}"
    )


# ----------------------------------------------------------------------
# Workload planning: which (target, layer, counts) does a step measure?
# ----------------------------------------------------------------------
#: target -> layer spec -> channel counts the step will need.
Workload = Dict[Target, Dict[ConvLayerSpec, Set[int]]]


def _merge(into: Workload, target: Target, spec: ConvLayerSpec, counts: Iterable[int]) -> None:
    into.setdefault(target, {}).setdefault(spec, set()).update(counts)


def _sweep_counts(spec: ConvLayerSpec, channel_counts, sweep_step: int) -> Tuple[int, ...]:
    """The exact counts :meth:`Session.profile_layer` will measure.

    Delegates to :meth:`Session._sweep_counts` so workload enumeration
    can never drift from what the serial measurement path does — the
    backends' bitwise-identical / zero-extra-simulation invariant
    depends on the two agreeing.
    """

    from .session import Session

    return Session._sweep_counts(spec, channel_counts, sweep_step)


def _request_workload(session: "Session", request: PruningRequest) -> Workload:
    """The measurements a pruning job will need, enumerated up front.

    Under-enumeration is always safe — whatever is missing is measured
    serially when the step runs — so strategies whose exact
    configurations depend on runtime choices (``uninstructed``)
    contribute nothing here.
    """

    workload: Workload = {}
    if request.strategy == "uninstructed":
        return workload
    network = session.network(request.model)
    indices = (
        list(request.layer_indices)
        if request.layer_indices is not None
        else network.conv_layer_indices
    )
    for index in indices:
        spec = network.conv_layer(index).spec
        counts = set(_sweep_counts(spec, None, request.sweep_step))
        if request.strategy == "performance-aware" and request.fraction is not None:
            # snap_to_step also measures the naive per-layer target.
            counts.add(max(1, round(spec.out_channels * (1.0 - request.fraction))))
        _merge(workload, request.target, spec, counts)
    return workload


def step_workload(session: "Session", step: Step) -> Workload:
    """Enumerate the measurement workload of one plan step."""

    params = step.params
    workload: Workload = {}
    if step.kind == "sweep":
        targets = [Target.of(entry) for entry in params["targets"]]
        specs = [ConvLayerSpec.from_dict(entry) for entry in params["layers"]]
        for target in targets:
            for spec in specs:
                _merge(workload, target, spec, _sweep_counts(
                    spec, params.get("channel_counts"), params["sweep_step"]
                ))
    elif step.kind == "profile":
        target = Target.of(params["target"])
        network = session.network(params["model"])
        indices = params.get("layer_indices")
        indices = list(indices) if indices is not None else network.conv_layer_indices
        for index in indices:
            spec = network.conv_layer(index).spec
            _merge(workload, target, spec, _sweep_counts(spec, None, params["sweep_step"]))
    elif step.kind == "prune":
        request = PruningRequest.from_dict(params["request"])
        workload = _request_workload(session, request)
    elif step.kind == "compare":
        request = PruningRequest.from_dict(params["request"])
        for strategy in params["strategies"]:
            for target, per_spec in _request_workload(
                session, request.with_strategy(strategy)
            ).items():
                for spec, counts in per_spec.items():
                    _merge(workload, target, spec, counts)
    # "figure" steps run through the experiment registry's own session;
    # their workload is not enumerable here.
    return workload


# ----------------------------------------------------------------------
# Step execution (shared by all backends)
# ----------------------------------------------------------------------
def run_step(session: "Session", step: Step) -> Any:
    """Execute one validated step against a session's internal engines."""

    params = step.params
    if step.kind == "sweep":
        return session._sweep_impl(
            [Target.of(entry) for entry in params["targets"]],
            [ConvLayerSpec.from_dict(entry) for entry in params["layers"]],
            params.get("channel_counts"),
            params["sweep_step"],
        )
    if step.kind == "profile":
        indices = params.get("layer_indices")
        return session._profile_network_impl(
            Target.of(params["target"]),
            params["model"],
            list(indices) if indices is not None else None,
            params["sweep_step"],
        )
    if step.kind == "prune":
        return session._prune_impl(PruningRequest.from_dict(params["request"]))
    if step.kind == "compare":
        return session._compare_impl(
            PruningRequest.from_dict(params["request"]), params["strategies"]
        )
    if step.kind == "figure":
        return _run_figure(session, step)
    raise ExecutionError(f"no handler for step kind {step.kind!r}")  # pragma: no cover


def _run_figure(session: "Session", step: Step) -> Any:
    """Regenerate a registered figure/table through the experiment suite.

    Experiment generators resolve their session via
    :func:`repro.experiments.base.default_session`; the plan's session
    is installed there for the duration of the step, so figure
    measurements use this session's noise seed, checkpoint into its
    profile store and share its caches.
    """

    from ..experiments.base import swap_default_session
    from ..experiments.registry import run_experiment

    options = dict(step.params.get("options", {}))
    previous = swap_default_session(session)
    try:
        return run_experiment(step.params["experiment"], **options)
    finally:
        swap_default_session(previous)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
@EXECUTORS.register("serial")
class SerialExecutor:
    """Steps in insertion order, measurements per (target, layer) — the
    legacy :class:`Session` call chain, now expressed over a plan."""

    name = "serial"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs  # accepted for interface uniformity; unused

    def execute(self, session: "Session", plan: Plan) -> Dict[str, Any]:
        return {step.id: run_step(session, step) for step in plan}


@EXECUTORS.register("batched")
class BatchedExecutor:
    """One cross-layer simulator batch per (step, target) before the
    step logic runs against a warm cache."""

    name = "batched"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs  # accepted for interface uniformity; unused

    def execute(self, session: "Session", plan: Plan) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        for step in plan:
            for target, per_spec in step_workload(session, step).items():
                session.runner(target).prefetch(
                    (spec, sorted(counts)) for spec, counts in per_spec.items()
                )
            results[step.id] = run_step(session, step)
        return results


def _measure_worker(
    target_payload: Dict[str, Any],
    spec_payload: Dict[str, Any],
    counts: List[int],
    seed: int,
) -> List[Dict[str, Any]]:
    """Measure one (target, layer) sweep in a worker process.

    Runs without a store (the parent owns persistence) and returns plain
    measurement dicts, so the task round-trips through pickling with no
    shared state.  Determinism comes from the counter-based noise
    stream: the same (configuration, seed) yields the same measurement
    in any process.
    """

    target = Target.from_dict(target_payload)
    spec = ConvLayerSpec.from_dict(spec_payload)
    runner = ProfileRunner.for_target(target, seed=seed)
    return [m.as_dict() for m in runner.measure_many(spec, counts)]


@EXECUTORS.register("process")
class ProcessExecutor:
    """Fan the plan's measurement workload across worker processes.

    The combined workload of every step is deduplicated against the
    session cache and profile store, split into one task per (target,
    layer) sweep, measured in a :class:`ProcessPoolExecutor`, and
    adopted back into the parent session (and its store) before the
    steps themselves run — so step logic sees only cache hits and the
    results are bitwise identical to the serial backend.
    """

    name = "process"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be None or >= 1, got {jobs}")
        self.jobs = jobs

    def execute(self, session: "Session", plan: Plan) -> Dict[str, Any]:
        merged: Workload = {}
        for step in plan:
            for target, per_spec in step_workload(session, step).items():
                for spec, counts in per_spec.items():
                    _merge(merged, target, spec, counts)

        tasks: List[Tuple[Target, ConvLayerSpec, List[int]]] = []
        for target, per_spec in merged.items():
            runner = session.runner(target)
            for spec, counts in per_spec.items():
                missing = runner.pending_counts(spec, sorted(counts))
                if missing:
                    tasks.append((target, spec, missing))

        if tasks:
            self._fan_out(session, tasks)
        return {step.id: run_step(session, step) for step in plan}

    def _fan_out(
        self, session: "Session", tasks: List[Tuple[Target, ConvLayerSpec, List[int]]]
    ) -> None:
        max_workers = self.jobs if self.jobs is not None else min(len(tasks), 8)
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    _measure_worker,
                    target.to_dict(),
                    spec.as_dict(),
                    counts,
                    session.seed,
                ): (target, spec)
                for target, spec, counts in tasks
            }
            for future in as_completed(futures):
                target, spec = futures[future]
                try:
                    payloads = future.result()
                except Exception as error:
                    raise ExecutionError(
                        f"worker measuring {spec.name!r} on {target.label} failed: {error}"
                    ) from error
                session.runner(target).adopt(
                    spec, [Measurement.from_dict(payload) for payload in payloads]
                )


__all__ = [
    "EXECUTORS",
    "BatchedExecutor",
    "ExecutionError",
    "ProcessExecutor",
    "SerialExecutor",
    "UnknownExecutorError",
    "resolve_executor",
    "step_workload",
    "run_step",
]
