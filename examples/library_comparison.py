#!/usr/bin/env python
"""Compare how each library responds to channel pruning of the same layer.

Section V of the paper concludes that "no optimal library exists to
outperform across all neural network layers".  This example sweeps one
ResNet-50 layer across channel counts on every (device, library) target
the paper evaluates and reports, for each: the latency at the original
size, the best achievable speedup, the worst slowdown risked, and how
many distinct latency levels the staircase has.

Run with ``python examples/library_comparison.py [layer_index]``.
"""

from __future__ import annotations

import sys

from repro.analysis import latency_curve
from repro.api import Session, Target
from repro.core import analyze_table
from repro.profiling import build_latency_table

TARGETS = (
    ("jetson-tx2", "cudnn"),
    ("jetson-nano", "cudnn"),
    ("hikey-970", "acl-gemm"),
    ("hikey-970", "acl-direct"),
    ("hikey-970", "tvm"),
    ("odroid-xu4", "acl-gemm"),
)


def main() -> None:
    layer_index = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    session = Session()
    network = session.network("resnet50")
    ref = network.conv_layer(layer_index)
    spec = ref.spec
    print(f"Layer {ref.label}: {spec.out_channels} filters, "
          f"{spec.kernel_size}x{spec.kernel_size}, input {spec.input_hw}x{spec.input_hw}\n")
    header = (f"{'target':>24} {'orig ms':>9} {'best ms':>9} {'best x':>7} "
              f"{'worst x':>8} {'levels':>7}")
    print(header)
    print("-" * len(header))

    for device, library in TARGETS:
        runner = session.runner(Target(device, library, runs=3))
        counts = list(range(1, spec.out_channels + 1, 2)) + [spec.out_channels]
        table = build_latency_table(runner, spec, sorted(set(counts)))
        curve = latency_curve(runner, spec, ref.label, channel_counts=sorted(set(counts)))
        analysis = analyze_table(table)
        original = table.time_ms(spec.out_channels)
        best = curve.min_time_ms
        worst = curve.max_time_ms
        print(f"{library + '@' + device:>24} {original:>9.2f} {best:>9.2f} "
              f"{original / best:>7.2f} {original / worst:>8.2f} "
              f"{analysis.level_count:>7}")

    print("\n'best x' is the speedup of the best pruning level; 'worst x' below 1.0 "
          "means some pruning levels are slower than the unpruned layer "
          "(the hazard the paper warns about).")


if __name__ == "__main__":
    main()
