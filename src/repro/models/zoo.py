"""Model zoo: the three networks the paper profiles, by name.

Builders are registered in the unified :data:`MODELS` registry (see
:mod:`repro.api.registry`); ``MODELS.create("resnet50")`` builds a
network, and :class:`repro.api.Session.network` adds cross-call reuse on
top.  The zoo also exposes the *profiled layer sets* used throughout the
experiments — for each network, the convolutional layers with unique
shapes whose pruning behaviour the paper reports.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from . import alexnet, resnet50, vgg16
from ..api.registry import Registry, UnknownPluginError, warn_deprecated
from .graph import ConvLayerRef, Network


class UnknownModelError(UnknownPluginError):
    """Raised when a model name is not present in the zoo."""


#: The unified model registry; entries are zero-argument network
#: builders, invoked per lookup via ``MODELS.create(name)``.
MODELS: Registry[Callable[[], Network]] = Registry(
    "model",
    error_cls=UnknownModelError,
    aliases={
        "resnet": "resnet50",
        "resnet-50": "resnet50",
        "vgg": "vgg16",
        "vgg-16": "vgg16",
    },
)

MODELS.register("resnet50", resnet50.build_resnet50)
MODELS.register("vgg16", vgg16.build_vgg16)
MODELS.register("alexnet", alexnet.build_alexnet)

_PROFILED_INDICES: Dict[str, Tuple[int, ...]] = {
    "resnet50": resnet50.PROFILED_LAYER_INDICES,
    "vgg16": vgg16.PROFILED_LAYER_INDICES,
    "alexnet": alexnet.PROFILED_LAYER_INDICES,
}


def available_models() -> List[str]:
    """Names of the models in the zoo, sorted."""

    return MODELS.available()


def canonical_name(name: str) -> str:
    """Resolve aliases and capitalisation to a canonical zoo name."""

    return MODELS.canonical(name)


def build_model(name: str) -> Network:
    """Build a network from the zoo by name (aliases accepted).

    .. deprecated::
        Use ``MODELS.create(name)`` or :meth:`repro.api.Session.network`
        instead.
    """

    warn_deprecated(
        "repro.models.build_model",
        "repro.models.zoo.MODELS.create or repro.api.Session.network",
    )
    return MODELS.create(name)


def profiled_layer_indices(name: str) -> Tuple[int, ...]:
    """Indices of the layers the paper profiles for the given model."""

    return _PROFILED_INDICES[canonical_name(name)]


def profiled_layer_refs(name: str) -> List[ConvLayerRef]:
    """Profiled layers of a model as :class:`ConvLayerRef` objects."""

    network = MODELS.create(canonical_name(name))
    return [network.conv_layer(index) for index in profiled_layer_indices(name)]
