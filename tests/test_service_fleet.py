"""Tests for the distributed worker fleet: leases, workers, remote executor.

Three layers, matching the subsystem's structure:

- :class:`~repro.service.fleet.leases.LeaseManager` unit tests — claim
  FIFO, heartbeat expiry, crash-safe re-queue, attempt exhaustion and
  the zombie fence (stale completions rejected).
- HTTP route tests — the ``/v1/workers`` + ``/v1/leases`` surface over
  a real localhost socket, including error-code mapping.
- End-to-end: plans submitted with ``--executor remote`` against a live
  fleet are bitwise identical to serial execution, survive a worker
  crash mid-lease with every configuration simulated exactly once, and
  cancel cleanly mid-wait.
"""

import threading
import time

import pytest

from repro.api import Plan, PruningRequest, Session, Target
from repro.api.executor import EXECUTORS, ExecutionError, _measure_worker
from repro.models import ConvLayerSpec
from repro.profiling.store import ProfileStore
from repro.service import FleetWorker, ReproServer, ServiceClient, ServiceError
from repro.service.fleet.leases import (
    LeaseError,
    LeaseFailedError,
    LeaseManager,
    LeaseWaitAborted,
    StaleLeaseError,
    UnknownLeaseError,
)
from repro.service.results import step_result_payload

TARGETS = (Target("hikey-970", "acl-gemm"), Target("jetson-tx2", "cudnn"))

LAYER = ConvLayerSpec(
    name="test.fleet.conv", in_channels=16, out_channels=24,
    kernel_size=3, stride=1, padding=1, input_hw=14,
)


def one_task():
    """One valid (target dict, spec dict, counts, seed) lease task."""

    return (TARGETS[0].to_dict(), LAYER.as_dict(), [8, 16], 0)


def measure(task):
    """The honest payload a worker would post back for ``task``."""

    return _measure_worker(*task)


def diamond_plan(sweep_step: int = 8) -> Plan:
    plan = Plan()
    base = plan.sweep(TARGETS, LAYER, sweep_step=sweep_step)
    left = plan.sweep(
        TARGETS[0],
        ConvLayerSpec(
            name="test.fleet.left", in_channels=32, out_channels=48,
            kernel_size=3, stride=1, padding=1, input_hw=14,
        ),
        sweep_step=sweep_step,
        depends_on=[base.id],
    )
    right = plan.sweep(
        TARGETS[1],
        ConvLayerSpec(
            name="test.fleet.right", in_channels=32, out_channels=48,
            kernel_size=1, stride=1, padding=0, input_hw=14,
        ),
        sweep_step=sweep_step,
        depends_on=[base.id],
    )
    plan.prune(
        PruningRequest("resnet50", TARGETS[0], fraction=0.25,
                       layer_indices=(16,), sweep_step=16),
        depends_on=[left.id, right.id],
    )
    return plan


# ----------------------------------------------------------------------
# LeaseManager unit tests
# ----------------------------------------------------------------------
class TestLeaseManager:
    def test_publish_claim_complete_wait_roundtrip(self):
        manager = LeaseManager(lease_ttl=5.0)
        task = one_task()
        (lease_id,) = manager.publish([task], job_id="job-1")
        worker = manager.register_worker("w1")["worker"]

        lease = manager.claim(worker)
        assert lease["lease"] == lease_id
        assert lease["counts"] == [8, 16]
        assert lease["job"] == "job-1"
        assert lease["attempt"] == 1

        payloads = measure(task)
        manager.complete(lease_id, worker, measurements=payloads)
        done = manager.wait([lease_id], timeout=1.0)
        assert done[lease_id] == payloads
        assert manager.completed == 1

    def test_claims_are_fifo(self):
        manager = LeaseManager(lease_ttl=5.0)
        first, second = manager.publish([one_task(), one_task()])
        worker = manager.register_worker()["worker"]
        assert manager.claim(worker)["lease"] == first
        assert manager.claim(worker)["lease"] == second
        assert manager.claim(worker) is None

    def test_claim_returns_none_when_idle(self):
        manager = LeaseManager(lease_ttl=5.0)
        worker = manager.register_worker()["worker"]
        started = time.monotonic()
        assert manager.claim(worker, timeout=0.2) is None
        assert time.monotonic() - started >= 0.2

    def test_missed_heartbeats_requeue_the_lease(self):
        manager = LeaseManager(lease_ttl=0.1)
        (lease_id,) = manager.publish([one_task()])
        dead = manager.register_worker("dead")["worker"]
        live = manager.register_worker("live")["worker"]

        assert manager.claim(dead)["lease"] == lease_id
        time.sleep(0.15)  # past the deadline without a heartbeat
        reclaimed = manager.claim(live)
        assert reclaimed["lease"] == lease_id
        assert reclaimed["attempt"] == 2
        assert manager.expired == 1

    def test_heartbeat_extends_the_deadline(self):
        manager = LeaseManager(lease_ttl=0.3)
        (lease_id,) = manager.publish([one_task()])
        worker = manager.register_worker()["worker"]
        manager.claim(worker)
        for _ in range(3):
            time.sleep(0.15)
            manager.heartbeat(lease_id, worker)
        # 0.45s elapsed > ttl, but the beats kept the lease alive.
        assert manager.status()["leases"]["claimed"] == 1
        assert manager.expired == 0

    def test_exhausted_attempts_fail_the_lease_and_the_wait(self):
        manager = LeaseManager(lease_ttl=0.05, max_attempts=2)
        (lease_id,) = manager.publish([one_task()])
        worker = manager.register_worker()["worker"]
        for _ in range(2):
            assert manager.claim(worker, timeout=1.0)["lease"] == lease_id
            time.sleep(0.08)  # let it expire
        with pytest.raises(LeaseFailedError, match="failed permanently"):
            manager.wait([lease_id], timeout=1.0)
        assert manager.failed == 1

    def test_stale_completion_is_fenced(self):
        manager = LeaseManager(lease_ttl=0.1)
        task = one_task()
        (lease_id,) = manager.publish([task])
        zombie = manager.register_worker("zombie")["worker"]
        honest = manager.register_worker("honest")["worker"]

        manager.claim(zombie)
        time.sleep(0.15)
        manager.claim(honest)  # re-queued and re-claimed

        payloads = measure(task)
        with pytest.raises(StaleLeaseError):
            manager.complete(lease_id, zombie, measurements=payloads)
        manager.complete(lease_id, honest, measurements=payloads)
        assert manager.wait([lease_id], timeout=1.0)[lease_id] == payloads
        assert manager.completed == 1  # exactly one adoption

    def test_error_completion_requeues(self):
        manager = LeaseManager(lease_ttl=5.0)
        (lease_id,) = manager.publish([one_task()])
        worker = manager.register_worker()["worker"]
        manager.claim(worker)
        result = manager.complete(lease_id, worker, error="boom")
        assert result["status"] == "pending"
        assert manager.claim(worker)["attempt"] == 2

    def test_completion_payload_validation(self):
        manager = LeaseManager(lease_ttl=5.0)
        (lease_id,) = manager.publish([one_task()])
        worker = manager.register_worker()["worker"]
        manager.claim(worker)
        with pytest.raises(LeaseError, match="either measurements or an error"):
            manager.complete(lease_id, worker)
        with pytest.raises(LeaseError, match="either measurements or an error"):
            manager.complete(lease_id, worker, measurements=[], error="x")
        with pytest.raises(LeaseError, match="malformed measurement"):
            manager.complete(lease_id, worker, measurements=[{"nope": 1}])
        with pytest.raises(LeaseError, match="at least one measurement"):
            manager.complete(lease_id, worker, measurements=[])
        # Failed validation must not release the lease: it stays claimed
        # (and will expire) instead of poisoning the waiting executor.
        assert manager.status()["leases"]["claimed"] == 1

    def test_wait_abort_raises(self):
        manager = LeaseManager(lease_ttl=5.0)
        lease_ids = manager.publish([one_task()])
        with pytest.raises(LeaseWaitAborted):
            manager.wait(lease_ids, abort=lambda: True, poll=0.01)

    def test_wait_timeout_raises(self):
        manager = LeaseManager(lease_ttl=5.0)
        lease_ids = manager.publish([one_task()])
        with pytest.raises(LeaseError, match="timed out"):
            manager.wait(lease_ids, timeout=0.1)

    def test_revoke_forgets_leases(self):
        manager = LeaseManager(lease_ttl=5.0)
        (lease_id,) = manager.publish([one_task()])
        worker = manager.register_worker()["worker"]
        assert manager.revoke([lease_id]) == 1
        assert manager.claim(worker) is None
        with pytest.raises(UnknownLeaseError):
            manager.heartbeat(lease_id, worker)
        with pytest.raises(UnknownLeaseError):
            manager.wait([lease_id], timeout=0.1)

    def test_status_snapshot(self):
        manager = LeaseManager(lease_ttl=2.0, max_attempts=3)
        manager.publish([one_task(), one_task()])
        worker = manager.register_worker("snapshot")["worker"]
        manager.claim(worker)
        status = manager.status()
        assert status["lease_ttl"] == 2.0
        assert status["max_attempts"] == 3
        assert status["leases"] == {
            "pending": 1, "claimed": 1, "completed": 0, "failed": 0,
        }
        assert status["lifetime"]["published"] == 2
        (record,) = status["workers"]
        assert record["name"] == "snapshot"
        assert record["active"] is True

    def test_constructor_validation(self):
        with pytest.raises(LeaseError):
            LeaseManager(lease_ttl=0)
        with pytest.raises(LeaseError):
            LeaseManager(max_attempts=0)
        with pytest.raises(LeaseError, match="at least one channel count"):
            LeaseManager().publish([(TARGETS[0].to_dict(), LAYER.as_dict(), [], 0)])


# ----------------------------------------------------------------------
# HTTP fleet routes
# ----------------------------------------------------------------------
@pytest.fixture
def server(tmp_path):
    with ReproServer(
        profile_store=tmp_path / "profiles.jsonl",
        job_store=tmp_path / "jobs.jsonl",
        lease_ttl=0.5,
    ) as running:
        yield running


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestFleetRoutes:
    def test_register_claim_complete_over_http(self, server, client):
        task = one_task()
        (lease_id,) = server.queue.lease_manager.publish([task])

        registration = client.register_worker("http-w")
        worker = registration["worker"]
        assert registration["lease_ttl"] == 0.5

        lease = client.claim_lease(worker, timeout=2.0)
        assert lease["lease"] == lease_id
        assert lease["seed"] == 0
        client.heartbeat_lease(lease_id, worker)
        done = client.complete_lease(lease_id, worker, measurements=measure(task))
        assert done == {"lease": lease_id, "status": "completed"}

        fleet = client.fleet()
        assert fleet["lifetime"]["completed"] == 1
        assert fleet["workers"][0]["completed"] == 1

    def test_claim_without_work_is_204(self, client):
        worker = client.register_worker()["worker"]
        assert client.claim_lease(worker, timeout=0.0) is None

    def test_fleet_error_mapping(self, server, client):
        worker = client.register_worker()["worker"]
        with pytest.raises(ServiceError) as excinfo:
            client.heartbeat_lease("lease-missing", worker)
        assert excinfo.value.status == 404

        task = one_task()
        (lease_id,) = server.queue.lease_manager.publish([task])
        client.claim_lease(worker, timeout=1.0)
        other = client.register_worker()["worker"]
        with pytest.raises(ServiceError) as excinfo:
            client.complete_lease(lease_id, other, measurements=measure(task))
        assert excinfo.value.status == 409

        with pytest.raises(ServiceError) as excinfo:
            client.complete_lease(lease_id, worker, measurements=[{"bad": 1}])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.claim_lease("", timeout=0.0)
        assert excinfo.value.status == 400

    def test_version_advertises_the_remote_executor(self, client):
        assert "remote" in client.version()["executors"]


# ----------------------------------------------------------------------
# End-to-end: remote executor against a live fleet
# ----------------------------------------------------------------------
def start_worker(url, **kwargs):
    """Run a FleetWorker on a daemon thread; returns (worker, thread, stop)."""

    stop = threading.Event()
    worker = FleetWorker(url=url, poll=0.2, **kwargs)
    thread = threading.Thread(target=worker.run, args=(stop,), daemon=True)
    thread.start()
    return worker, thread, stop


class TestRemoteExecution:
    def test_remote_results_match_serial_bitwise(self, server, client):
        plan = diamond_plan()
        workers = [start_worker(server.url, name=f"fleet-{i}") for i in range(2)]
        try:
            job = client.submit(plan, executor="remote")
            final = client.wait(job["id"], timeout=120.0)
        finally:
            for _, _, stop in workers:
                stop.set()
            for _, thread, _ in workers:
                thread.join(timeout=10.0)
        assert final["status"] == "succeeded", final.get("error")
        assert final["simulations"] == 0  # every measurement came from the fleet
        assert sum(worker.completed for worker, _, _ in workers) > 0

        serial = Session(seed=0).execute(plan, executor="serial")
        by_id = {step["id"]: step for step in final["steps"]}
        for step in plan:
            assert by_id[step.id]["result"] == step_result_payload(serial[step.id])

    def test_worker_crash_mid_lease_recovers_exactly_once(
        self, server, client, tmp_path
    ):
        plan = Plan()
        plan.sweep(TARGETS[0], LAYER, sweep_step=8)
        job = client.submit(plan, executor="remote")

        # A worker that claims the lease and then dies: no heartbeat, no
        # completion.  Its lease must expire and re-queue.
        crasher = client.register_worker("crasher")["worker"]
        deadline = time.monotonic() + 30.0
        lease = None
        while lease is None and time.monotonic() < deadline:
            lease = client.claim_lease(crasher, timeout=1.0)
        assert lease is not None, "the job never published its lease"

        worker, thread, stop = start_worker(server.url, name="rescuer")
        try:
            final = client.wait(job["id"], timeout=120.0)
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert final["status"] == "succeeded", final.get("error")
        assert worker.completed >= 1
        assert server.queue.lease_manager.expired >= 1

        # Exactly-once: the store holds each configuration once, nothing
        # superseded, and the per-target breakdown agrees.
        stats = ProfileStore(tmp_path / "profiles.jsonl").file_stats()
        assert stats["entries"] > 0
        assert stats["superseded"] == 0
        # hikey-970 resolves to its mali-g72 GPU in the store key.
        assert set(stats["by_target"]) == {"acl-gemm@mali-g72"}
        for per_target in stats["by_target"].values():
            assert per_target["measurements"] == per_target["entries"]

    def test_failing_lease_fails_the_job_after_max_attempts(self, tmp_path):
        with ReproServer(
            profile_store=tmp_path / "p.jsonl",
            job_store=tmp_path / "j.jsonl",
            lease_ttl=5.0,
        ) as running:
            running.queue.lease_manager.max_attempts = 1
            local = ServiceClient(running.url, timeout=30.0)
            plan = Plan()
            plan.sweep(TARGETS[0], LAYER, sweep_step=8)
            job = local.submit(plan, executor="remote")

            worker = local.register_worker("saboteur")["worker"]
            deadline = time.monotonic() + 30.0
            lease = None
            while lease is None and time.monotonic() < deadline:
                lease = local.claim_lease(worker, timeout=1.0)
            local.complete_lease(lease["lease"], worker, error="simulated crash")

            final = local.wait(job["id"], timeout=60.0)
            assert final["status"] == "failed"
            assert "simulated crash" in final["error"]

    def test_cancel_interrupts_a_lease_wait(self, server, client):
        plan = Plan()
        plan.sweep(TARGETS[0], LAYER, sweep_step=8)
        job = client.submit(plan, executor="remote")  # no workers attached

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.job(job["id"])["status"] == "running":
                break
            time.sleep(0.02)
        # Give the executor a moment to actually publish and block.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if server.queue.lease_manager.status()["leases"]["pending"]:
                break
            time.sleep(0.02)

        client.cancel(job["id"])
        final = client.wait(job["id"], timeout=30.0)
        assert final["status"] == "cancelled"
        (step,) = final["steps"]
        assert step["status"] == "skipped"

    def test_unwired_remote_executor_explains_itself(self):
        executor = EXECUTORS.create("remote")
        with pytest.raises(ExecutionError, match="repro-experiments serve"):
            executor.execute(Session(), diamond_plan())


# ----------------------------------------------------------------------
# Satellite regressions: per-job pool reuse and event keepalives
# ----------------------------------------------------------------------
class TestProcessPoolReuse:
    def test_one_pool_per_multi_step_process_job(self, tmp_path, monkeypatch):
        from concurrent.futures import ProcessPoolExecutor

        import repro.service.queue as queue_module

        constructed = []

        class CountingPool(ProcessPoolExecutor):
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(queue_module, "ProcessPoolExecutor", CountingPool)
        with ReproServer(
            profile_store=tmp_path / "p.jsonl", job_store=tmp_path / "j.jsonl"
        ) as running:
            local = ServiceClient(running.url, timeout=30.0)
            job = local.submit(diamond_plan(), executor="process", jobs=2)
            final = local.wait(job["id"], timeout=180.0)
        assert final["status"] == "succeeded", final.get("error")
        assert len(constructed) == 1  # one pool for all four steps


class TestEventKeepalive:
    def test_idle_stream_emits_keepalives(self, tmp_path):
        with ReproServer(
            profile_store=tmp_path / "p.jsonl",
            job_store=tmp_path / "j.jsonl",
            lease_ttl=5.0,
            events_keepalive_seconds=0.2,
        ) as running:
            local = ServiceClient(running.url, timeout=30.0)
            plan = Plan()
            plan.sweep(TARGETS[0], LAYER, sweep_step=8)
            # No workers: a remote job idles inside its lease wait, which
            # is exactly when watchers need keepalives.
            job = local.submit(plan, executor="remote")

            seen = []
            for event in local.iter_events(job["id"], keepalives=True):
                seen.append(event["event"])
                if seen.count("keepalive") >= 2:
                    break
            assert "keepalive" in seen

            # The default stream filters them out.
            local.cancel(job["id"])
            local.wait(job["id"], timeout=30.0)
            names = [e["event"] for e in local.iter_events(job["id"])]
            assert "keepalive" not in names
            assert names[-1] == "job-finished"
