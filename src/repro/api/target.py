"""The ``Target`` value object: one (device, library) deployment pair.

The paper's central argument is that pruning decisions are only
meaningful *per target* — the same network pruned for ACL GEMM on a
HiKey 970 is the wrong network for cuDNN on a Jetson TX2.  Historically
the code base passed that pair around as two loose strings; ``Target``
makes it a validated, hashable value that can key caches
(:class:`repro.api.Session`), travel inside serialized
:class:`repro.api.PruningRequest` jobs and resolve itself against the
unified registries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence, Tuple, Union

from ..gpusim.device import DEVICES, DeviceSpec
from ..libraries.base import LIBRARIES, ConvolutionLibrary

#: Default number of repeated measurements per configuration; matches the
#: legacy ``PerformanceAwarePruner`` default so ``Session`` reproduces it.
DEFAULT_TARGET_RUNS = 3

#: Anything :meth:`Target.of` accepts.
TargetLike = Union["Target", Tuple[str, str], Tuple[str, str, int], Mapping[str, Any], str]


class TargetError(ValueError):
    """Raised when a target is structurally invalid (bad names, API mismatch)."""


@dataclass(frozen=True)
class Target:
    """A validated (device, library) pair plus the measurement protocol.

    Device and library names are canonicalised against
    :data:`repro.gpusim.device.DEVICES` and
    :data:`repro.libraries.base.LIBRARIES` at construction, so two
    targets built from aliases (``Target("tx2", "cudnn7")`` and
    ``Target("jetson-tx2", "cudnn")``) compare and hash equal.  A pair
    whose programming APIs cannot meet (an OpenCL library on a CUDA
    board) is rejected immediately rather than at plan time.
    """

    device: str
    library: str
    runs: int = DEFAULT_TARGET_RUNS

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "device", DEVICES.canonical(self.device))
            object.__setattr__(self, "library", LIBRARIES.canonical(self.library))
        except KeyError as error:
            # Re-raise with the registry's message; TargetError keeps the
            # "invalid target" contract a single except clause wide.
            raise TargetError(str(error.args[0] if error.args else error)) from error
        if not isinstance(self.runs, int) or isinstance(self.runs, bool) or self.runs < 1:
            raise TargetError(f"runs must be a positive integer, got {self.runs!r}")
        device_api = DEVICES.get(self.device).api
        library_api = LIBRARIES.get(self.library).api
        if device_api != library_api:
            raise TargetError(
                f"library {self.library!r} targets {library_api} devices, but "
                f"{self.device!r} is a {device_api} device"
            )

    # ------------------------------------------------------------------
    # Resolution against the registries
    # ------------------------------------------------------------------
    @property
    def device_spec(self) -> DeviceSpec:
        """The :class:`DeviceSpec` preset this target runs on."""

        return DEVICES.get(self.device)

    def create_library(self) -> ConvolutionLibrary:
        """Instantiate a fresh library planner for this target."""

        return LIBRARIES.create(self.library)

    @property
    def label(self) -> str:
        """Compact ``library@device`` identifier used in reports."""

        return f"{self.library}@{self.device}"

    # ------------------------------------------------------------------
    # Construction helpers and serialization
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, value: TargetLike, runs: int | None = None) -> "Target":
        """Coerce a target-like value into a :class:`Target`.

        Accepts an existing :class:`Target`, a ``(device, library)`` or
        ``(device, library, runs)`` sequence, a mapping produced by
        :meth:`to_dict`, or a ``"library@device"`` label.  ``runs``
        overrides the measurement count when given.
        """

        if isinstance(value, Target):
            if runs is not None and runs != value.runs:
                return cls(value.device, value.library, runs)
            return value
        if isinstance(value, str):
            if "@" not in value:
                raise TargetError(
                    f"expected a 'library@device' label, got {value!r}"
                )
            library, _, device = value.partition("@")
            return cls(device, library, runs if runs is not None else DEFAULT_TARGET_RUNS)
        if isinstance(value, Mapping):
            target = cls.from_dict(value)
            return cls.of(target, runs)
        if isinstance(value, Sequence) and 2 <= len(value) <= 3:
            device, library = value[0], value[1]
            target_runs = value[2] if len(value) == 3 else DEFAULT_TARGET_RUNS
            if runs is not None:
                target_runs = runs
            return cls(device, library, target_runs)
        raise TargetError(f"cannot interpret {value!r} as a Target")

    def with_runs(self, runs: int) -> "Target":
        """The same (device, library) pair with a different run count."""

        return Target(self.device, self.library, runs)

    def to_dict(self) -> Dict[str, Any]:
        return {"device": self.device, "library": self.library, "runs": self.runs}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Target":
        try:
            device = payload["device"]
            library = payload["library"]
        except KeyError as error:
            raise TargetError(f"target payload missing key {error.args[0]!r}") from error
        return cls(device, library, payload.get("runs", DEFAULT_TARGET_RUNS))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


def coerce_targets(targets) -> "list[Target]":
    """Accept one target-like value or an iterable of them.

    A bare ``(device, library[, runs])`` name tuple is one target; any
    other iterable is a collection of target-like values.  Used by
    :meth:`repro.api.Session.sweep` and the :class:`repro.api.Plan`
    builders so both accept the same spellings.
    """

    if isinstance(targets, (Target, str, Mapping)):
        return [Target.of(targets)]
    seq = list(targets)
    if 2 <= len(seq) <= 3 and all(
        isinstance(item, str) and "@" not in item for item in seq[:2]
    ):
        return [Target.of(tuple(seq))]
    return [Target.of(item) for item in seq]


def default_targets(runs: int = DEFAULT_TARGET_RUNS) -> Tuple[Target, ...]:
    """The paper's four evaluation targets as :class:`Target` objects."""

    return (
        Target("hikey-970", "acl-gemm", runs),
        Target("hikey-970", "acl-direct", runs),
        Target("hikey-970", "tvm", runs),
        Target("jetson-tx2", "cudnn", runs),
    )


def iter_all_targets(runs: int = DEFAULT_TARGET_RUNS):
    """Every API-compatible (device, library) pair in the registries."""

    for device in DEVICES.available():
        for library in LIBRARIES.available():
            try:
                yield Target(device, library, runs)
            except TargetError:
                continue


__all__ = [
    "DEFAULT_TARGET_RUNS",
    "Target",
    "TargetError",
    "TargetLike",
    "coerce_targets",
    "default_targets",
    "iter_all_targets",
]
