"""NumPy compute substrate: reference convolution routines and operators.

This layer is target-agnostic; for the profiling/pruning workflow start
at :mod:`repro.api` (the canonical entry point).
"""

from .direct_conv import direct_conv2d, direct_conv2d_for_spec
from .gemm_conv import gemm_conv2d, gemm_conv2d_for_spec, gemm_dimensions
from .im2col import im2col, im2col_for_spec, im2col_output_shape, memory_expansion_factor
from .inference import InferenceEngine, InferenceResult, prune_weights, run_single_layer
from .ops import (
    activation,
    batch_norm,
    dropout,
    fully_connected,
    global_average_pool,
    pool2d,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from .tensor import DTYPE, conv_bias, conv_input, conv_weights, random_tensor, seed_from_name

__all__ = [
    "DTYPE",
    "InferenceEngine",
    "InferenceResult",
    "activation",
    "batch_norm",
    "conv_bias",
    "conv_input",
    "conv_weights",
    "direct_conv2d",
    "direct_conv2d_for_spec",
    "dropout",
    "fully_connected",
    "gemm_conv2d",
    "gemm_conv2d_for_spec",
    "gemm_dimensions",
    "global_average_pool",
    "im2col",
    "im2col_for_spec",
    "im2col_output_shape",
    "memory_expansion_factor",
    "pool2d",
    "prune_weights",
    "random_tensor",
    "relu",
    "run_single_layer",
    "seed_from_name",
    "sigmoid",
    "softmax",
    "tanh",
]
