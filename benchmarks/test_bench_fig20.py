"""Figure 20: TVM untuned-configuration spikes for ResNet-50 L14."""

from conftest import run_benchmarked


def test_fig20_fallback_spikes(benchmark):
    result = run_benchmarked(benchmark, "fig20", runs=1)
    # Paper: ~10.5x between untuned spikes and the tuned neighbourhood.
    assert result.measured["local_spike_ratio"] > 5.0
    assert 0.03 < result.measured["fallback_fraction"] < 0.4
