"""RL003 — internal callers of deprecated compatibility shims.

The code base keeps module-level shims (``get_device``, ``get_library``,
``get_criterion``, ``build_model``, ``get_experiment``,
``reset_default_session``, ``swap_default_session``) alive for external
callers, but internal code must use the session-scoped replacements.
Rather than hard-coding the shim list, :meth:`prepare` auto-discovers
every function whose *first* non-docstring statement issues a
``DeprecationWarning`` — either via the shared ``warn_deprecated``
helper or a direct ``warnings.warn(..., DeprecationWarning)`` — and
:meth:`check` flags any call to those names from ``repro/`` package
modules.  (The first-statement rule is deliberate: a function that only
warns on a legacy *argument form*, after its modern early returns, is
not itself a shim.)
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Sequence

from ..engine import Checker, Finding, ModuleSource, register_checker

#: Internal callers live inside the ``repro`` package tree.
_SCOPE_RE = re.compile(r"(^|/)repro/")


def _call_tail(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_deprecation_warn(statement: ast.stmt) -> bool:
    """Whether a statement is ``warn_deprecated(...)`` or a
    ``warnings.warn(..., DeprecationWarning)`` call."""

    if not (isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Call)):
        return False
    call = statement.value
    tail = _call_tail(call.func)
    if tail == "warn_deprecated":
        return True
    if tail != "warn":
        return False
    mentioned = [
        node.id
        for node in ast.walk(call)
        if isinstance(node, ast.Name)
    ]
    return "DeprecationWarning" in mentioned


def _is_forwarding_helper(func: ast.FunctionDef, statement: ast.stmt) -> bool:
    """Whether the warn call builds its message from the function's own
    parameters — the signature of an infrastructure helper such as
    ``warn_deprecated(old, new)``, not of a deprecated shim (shims warn
    with literals about themselves)."""

    params = {arg.arg for arg in func.args.args}
    params |= {arg.arg for arg in func.args.posonlyargs}
    params |= {arg.arg for arg in func.args.kwonlyargs}
    return any(
        isinstance(node, ast.Name) and node.id in params
        for node in ast.walk(statement)
    )


def _first_real_statement(func: ast.FunctionDef) -> Optional[ast.stmt]:
    for statement in func.body:
        if (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and isinstance(statement.value.value, str)
        ):
            continue  # docstring
        return statement
    return None


@register_checker
class DeprecatedShimChecker(Checker):
    code = "RL003"
    name = "deprecated-shims"
    description = (
        "internal repro/ modules must not call functions that open by "
        "raising DeprecationWarning (discovered automatically)"
    )

    def __init__(self) -> None:
        #: shim name -> rel path of the module that defines it.
        self._shims: Dict[str, str] = {}

    def prepare(self, modules: Sequence[ModuleSource]) -> None:
        self._shims = {}
        for module in modules:
            if not _SCOPE_RE.search(module.rel):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                first = _first_real_statement(node)
                if (
                    first is not None
                    and _is_deprecation_warn(first)
                    and not _is_forwarding_helper(node, first)
                ):
                    self._shims[node.name] = module.rel

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not self._shims or not _SCOPE_RE.search(module.rel):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = _call_tail(node.func)
            if tail is None:
                continue
            defined_in = self._shims.get(tail)
            if defined_in is None or defined_in == module.rel:
                # Calls inside the defining module are the shim's own
                # implementation plumbing, not internal adoption.
                continue
            yield self.finding(
                module,
                node,
                f"call to deprecated shim '{tail}' (defined in {defined_in}); "
                "internal code must use the session-scoped replacement",
            )
