"""Network graph representation used by the pruning engine.

The paper profiles each convolutional layer in isolation, but the
pruning *proposal* (Section V) operates on whole networks: the selected
channel count of layer ``i`` changes the input channel count of the
layer(s) that consume its output.  ``Network`` captures exactly the
structure needed for that: an ordered sequence of layer specs plus, for
every convolutional layer, the index of the convolutional layer feeding
it (if any).

Residual networks are handled conservatively: a convolution at the start
of a residual block consumes the block input, which is itself the output
of the previous block's final (or projection) convolution.  For the
single-layer latency study this detail is irrelevant — only the layer's
own shape matters — so the zoo builders keep the consumer map simple and
sequential.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .layers import ConvLayerSpec, LayerSpec


class NetworkError(ValueError):
    """Raised for structurally invalid networks or invalid pruning requests."""


@dataclass(frozen=True)
class ConvLayerRef:
    """A reference to a convolutional layer inside a network.

    ``index`` is the paper's layer index (e.g. ``ResNet.L16`` has index
    16); ``position`` is the position of the layer in the network's
    ordered layer list.
    """

    network: str
    index: int
    position: int
    spec: ConvLayerSpec

    @property
    def label(self) -> str:
        return f"{self.network}.L{self.index}"


@dataclass
class Network:
    """An ordered collection of layer specs with pruning support."""

    name: str
    layers: List[LayerSpec] = field(default_factory=list)
    input_shape: Tuple[int, int, int] = (3, 224, 224)
    conv_indices: Dict[int, int] = field(default_factory=dict)
    consumers: Dict[int, List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise NetworkError("network name must be non-empty")
        seen = set()
        for position in self.conv_indices.values():
            if position in seen:
                raise NetworkError("duplicate conv position in conv_indices")
            seen.add(position)
            if not isinstance(self.layers[position], ConvLayerSpec):
                raise NetworkError(
                    f"conv_indices points at non-convolution layer at position {position}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    @property
    def conv_layer_indices(self) -> List[int]:
        """Paper-style indices of the convolutional layers, sorted."""

        return sorted(self.conv_indices)

    def conv_layers(self) -> List[ConvLayerRef]:
        """All convolutional layers as references, in index order."""

        refs = []
        for index in self.conv_layer_indices:
            position = self.conv_indices[index]
            spec = self.layers[position]
            assert isinstance(spec, ConvLayerSpec)
            refs.append(ConvLayerRef(self.name, index, position, spec))
        return refs

    def conv_layer(self, index: int) -> ConvLayerRef:
        """Return the convolutional layer with the given paper index."""

        if index not in self.conv_indices:
            raise NetworkError(
                f"{self.name} has no convolutional layer with index {index}; "
                f"available: {self.conv_layer_indices}"
            )
        position = self.conv_indices[index]
        spec = self.layers[position]
        assert isinstance(spec, ConvLayerSpec)
        return ConvLayerRef(self.name, index, position, spec)

    def layer_label(self, index: int) -> str:
        return f"{self.name}.L{index}"

    # ------------------------------------------------------------------
    # Aggregate work metrics
    # ------------------------------------------------------------------
    @property
    def total_conv_macs(self) -> int:
        return sum(ref.spec.macs for ref in self.conv_layers())

    @property
    def total_conv_parameters(self) -> int:
        return sum(ref.spec.parameter_count for ref in self.conv_layers())

    def channel_counts(self) -> Dict[int, int]:
        """Mapping of conv layer index -> current output channel count."""

        return {ref.index: ref.spec.out_channels for ref in self.conv_layers()}

    # ------------------------------------------------------------------
    # Pruning transformations
    # ------------------------------------------------------------------
    def with_layer_channels(
        self,
        channels: Mapping[int, int],
        propagate: bool = True,
    ) -> "Network":
        """Return a new network with modified output channel counts.

        ``channels`` maps conv layer index -> new ``out_channels``.  When
        ``propagate`` is true, consumer convolutions have their
        ``in_channels`` updated to match, which is what happens when a
        whole network is compressed; when false, only the named layers
        change (the paper's single-layer latency experiments).
        """

        new_layers = list(self.layers)
        for index, new_count in channels.items():
            ref = self.conv_layer(index)
            if new_count < 1:
                raise NetworkError(
                    f"layer {self.layer_label(index)} cannot have {new_count} channels"
                )
            if new_count > ref.spec.out_channels:
                raise NetworkError(
                    f"layer {self.layer_label(index)} has {ref.spec.out_channels} "
                    f"channels; cannot grow to {new_count} by pruning"
                )
            # Re-read from new_layers: an earlier iteration may already have
            # updated this layer's in_channels via consumer propagation.
            current = new_layers[ref.position]
            assert isinstance(current, ConvLayerSpec)
            new_layers[ref.position] = current.with_out_channels(new_count)
            if propagate:
                for consumer_position in self.consumers.get(ref.position, []):
                    consumer = new_layers[consumer_position]
                    if isinstance(consumer, ConvLayerSpec):
                        new_layers[consumer_position] = consumer.with_in_channels(new_count)

        return Network(
            name=self.name,
            layers=new_layers,
            input_shape=self.input_shape,
            conv_indices=dict(self.conv_indices),
            consumers={k: list(v) for k, v in self.consumers.items()},
        )

    def prune_layer(self, index: int, n_pruned: int, propagate: bool = True) -> "Network":
        """Return a new network with ``n_pruned`` channels removed from one layer."""

        ref = self.conv_layer(index)
        remaining = ref.spec.out_channels - n_pruned
        if remaining < 1:
            raise NetworkError(
                f"pruning {n_pruned} channels from {self.layer_label(index)} "
                f"({ref.spec.out_channels} channels) would leave none"
            )
        return self.with_layer_channels({index: remaining}, propagate=propagate)

    # ------------------------------------------------------------------
    # Shape propagation (sanity check used by tests)
    # ------------------------------------------------------------------
    def infer_shapes(self) -> List[Tuple[int, int, int]]:
        """Propagate the input shape through all layers, returning outputs."""

        shapes = []
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            shapes.append(shape)
        return shapes


def sequential_consumers(layers: Sequence[LayerSpec]) -> Dict[int, List[int]]:
    """Build a consumer map assuming each conv feeds the next conv in order."""

    conv_positions = [
        position for position, layer in enumerate(layers) if isinstance(layer, ConvLayerSpec)
    ]
    consumers: Dict[int, List[int]] = {}
    for current, nxt in zip(conv_positions, conv_positions[1:]):
        consumers[current] = [nxt]
    return consumers


def build_sequential_network(
    name: str,
    layers: Iterable[LayerSpec],
    input_shape: Tuple[int, int, int],
    conv_index_map: Optional[Dict[int, int]] = None,
) -> Network:
    """Construct a :class:`Network` from an ordered layer list.

    ``conv_index_map`` maps the paper's layer index to the position in the
    layer list; when omitted, convolutions are indexed by their position.
    """

    layer_list = list(layers)
    if conv_index_map is None:
        conv_index_map = {
            position: position
            for position, layer in enumerate(layer_list)
            if isinstance(layer, ConvLayerSpec)
        }
    return Network(
        name=name,
        layers=layer_list,
        input_shape=input_shape,
        conv_indices=dict(conv_index_map),
        consumers=sequential_consumers(layer_list),
    )
