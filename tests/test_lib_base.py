"""Tests for the library registry and shared interface."""

import pytest

from repro.libraries import (
    AclDirectLibrary,
    AclGemmLibrary,
    ConvolutionLibrary,
    CudnnLibrary,
    TvmLibrary,
    UnknownLibraryError,
    available_libraries,
    LIBRARIES,
    get_library,
)


class TestRegistry:
    def test_all_four_libraries_registered(self):
        assert available_libraries() == ["acl-direct", "acl-gemm", "cudnn", "tvm"]

    def test_get_library_by_name(self):
        assert isinstance(LIBRARIES.create("acl-gemm"), AclGemmLibrary)
        assert isinstance(LIBRARIES.create("acl-direct"), AclDirectLibrary)
        assert isinstance(LIBRARIES.create("cudnn"), CudnnLibrary)
        assert isinstance(LIBRARIES.create("tvm"), TvmLibrary)

    def test_aliases(self):
        assert isinstance(LIBRARIES.create("ACL"), AclGemmLibrary)
        assert isinstance(LIBRARIES.create("cudnn7"), CudnnLibrary)
        assert isinstance(LIBRARIES.create("tvm-opencl"), TvmLibrary)

    def test_unknown_library(self):
        with pytest.raises(UnknownLibraryError):
            LIBRARIES.create("tensorrt")

    def test_each_call_returns_fresh_instance(self):
        assert LIBRARIES.create("tvm") is not LIBRARIES.create("tvm")

    def test_versions_match_paper(self):
        assert LIBRARIES.create("acl-gemm").version == "v19.02"
        assert LIBRARIES.create("acl-direct").version == "v19.02"
        assert LIBRARIES.create("cudnn").version == "v7"
        assert LIBRARIES.create("tvm").version == "0.6"

    def test_apis(self):
        assert LIBRARIES.create("acl-gemm").api == "opencl"
        assert LIBRARIES.create("tvm").api == "opencl"
        assert LIBRARIES.create("cudnn").api == "cuda"


class TestInterface:
    def test_plan_with_channels_prunes_before_planning(self, acl_gemm, layer16, hikey):
        plan = acl_gemm.plan_with_channels(layer16, 64, hikey)
        assert "main_columns=64" in plan.notes

    def test_check_device_enforced_by_all_libraries(self, layer16, hikey, tx2):
        from repro.libraries import LibraryError

        for name in available_libraries():
            library = LIBRARIES.create(name)
            wrong_device = tx2 if library.api == "opencl" else hikey
            with pytest.raises(LibraryError):
                library.plan(layer16, wrong_device)

    def test_plans_carry_library_and_layer_names(self, layer16, hikey, tx2):
        for name in available_libraries():
            library = LIBRARIES.create(name)
            device = hikey if library.api == "opencl" else tx2
            plan = library.plan(layer16, device)
            assert plan.library == name
            assert plan.layer_name == layer16.name

    def test_all_plans_have_positive_work(self, layer16, hikey, tx2):
        for name in available_libraries():
            library = LIBRARIES.create(name)
            device = hikey if library.api == "opencl" else tx2
            plan = library.plan(layer16, device)
            assert plan.total_arithmetic_instructions > 0
            assert plan.job_count >= 1

    def test_register_requires_name(self):
        from repro.libraries.base import register_library

        class Nameless(ConvolutionLibrary):
            name = ""
            api = "opencl"

            def plan(self, layer, device):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_library(Nameless)
