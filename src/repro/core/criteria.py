"""Channel importance criteria.

Section II-B of the paper prunes channels *sequentially* (always the
highest-indexed ones) because the runtime of the pruned layer does not
depend on which channels are removed, only on how many remain.  Real
pruning pipelines remove the *least important* channels; this module
provides both the paper's sequential criterion and the standard
magnitude-based criteria so the performance-aware optimiser can be
combined with an accuracy-motivated selection.

A criterion ranks the output channels of a convolutional layer and
returns the indices to *keep* for a requested count.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Type

import numpy as np

from ..api.registry import Registry, UnknownPluginError, warn_deprecated
from ..models.layers import ConvLayerSpec
from ..nn.tensor import conv_weights, seed_from_name


class CriterionError(ValueError):
    """Raised for invalid keep-counts or unknown criterion names."""


class UnknownCriterionError(CriterionError, UnknownPluginError):
    """Raised when a criterion name is not registered.

    Subclasses both :class:`CriterionError` (the historical type raised
    for unknown names) and the shared
    :class:`~repro.api.registry.UnknownPluginError`.
    """


class ImportanceCriterion(abc.ABC):
    """Base class: ranks channels and selects which to keep."""

    name: str = ""

    @abc.abstractmethod
    def scores(self, spec: ConvLayerSpec, weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Importance score per output channel (higher = more important)."""

    def keep_channels(
        self,
        spec: ConvLayerSpec,
        keep: int,
        weights: Optional[np.ndarray] = None,
    ) -> List[int]:
        """Indices of the ``keep`` most important channels, ascending.

        The returned indices are sorted so that the pruned layer keeps
        the original channel order — the "re-indexing" the paper
        describes maps kept channel ``i`` to its position in this list.
        """

        if not 1 <= keep <= spec.out_channels:
            raise CriterionError(
                f"cannot keep {keep} channels of a layer with {spec.out_channels}"
            )
        channel_scores = np.asarray(self.scores(spec, weights), dtype=float)
        if channel_scores.shape != (spec.out_channels,):
            raise CriterionError(
                f"{self.name}: expected {spec.out_channels} scores, "
                f"got shape {channel_scores.shape}"
            )
        # Stable selection: ties resolved by channel index.
        order = np.lexsort((np.arange(spec.out_channels), -channel_scores))
        kept = sorted(int(index) for index in order[:keep])
        return kept

    def prune_channels(
        self,
        spec: ConvLayerSpec,
        n_pruned: int,
        weights: Optional[np.ndarray] = None,
    ) -> List[int]:
        """Indices kept after removing ``n_pruned`` channels."""

        return self.keep_channels(spec, spec.out_channels - n_pruned, weights)


class SequentialCriterion(ImportanceCriterion):
    """Remove the highest-indexed channels first (the paper's choice).

    Runtime is independent of which channels are removed, so the paper
    "eliminate[s] channels sequentially for [the] inference time
    analysis".
    """

    name = "sequential"

    def scores(self, spec: ConvLayerSpec, weights: Optional[np.ndarray] = None) -> np.ndarray:
        return np.arange(spec.out_channels, 0, -1, dtype=float)


class L1NormCriterion(ImportanceCriterion):
    """Keep the channels with the largest L1 weight norm."""

    name = "l1"
    _order = 1

    def scores(self, spec: ConvLayerSpec, weights: Optional[np.ndarray] = None) -> np.ndarray:
        if weights is None:
            weights = conv_weights(spec)
        flat = np.abs(weights.reshape(weights.shape[0], -1)) ** self._order
        return flat.sum(axis=1) ** (1.0 / self._order)


class L2NormCriterion(L1NormCriterion):
    """Keep the channels with the largest L2 weight norm."""

    name = "l2"
    _order = 2


class RandomCriterion(ImportanceCriterion):
    """Keep a random (but deterministic per layer) subset of channels."""

    name = "random"

    def scores(self, spec: ConvLayerSpec, weights: Optional[np.ndarray] = None) -> np.ndarray:
        rng = np.random.default_rng(seed_from_name(spec.name + ".random-criterion"))
        return rng.random(spec.out_channels)


#: The unified criterion registry (see :mod:`repro.api.registry`);
#: entries are :class:`ImportanceCriterion` subclasses, instantiated per
#: lookup via ``CRITERIA.create(name)``.
CRITERIA: Registry[Type[ImportanceCriterion]] = Registry(
    "criterion", error_cls=UnknownCriterionError
)

for _criterion in (SequentialCriterion, L1NormCriterion, L2NormCriterion, RandomCriterion):
    CRITERIA.register(_criterion)
del _criterion


def available_criteria() -> List[str]:
    """Names of the registered importance criteria, sorted."""

    return CRITERIA.available()


def get_criterion(name: str) -> ImportanceCriterion:
    """Instantiate a criterion by name.

    .. deprecated::
        Use ``CRITERIA.create(name)`` instead.
    """

    warn_deprecated("repro.core.get_criterion", "repro.core.criteria.CRITERIA.create")
    return CRITERIA.create(name)
