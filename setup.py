"""Package metadata for the repro reproduction.

The version is sourced from ``repro.__version__`` (parsed textually so
``setup.py`` works without NumPy installed).
"""

import pathlib
import re

from setuptools import find_packages, setup

_HERE = pathlib.Path(__file__).resolve().parent


def _read_version() -> str:
    text = (_HERE / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if not match:
        raise RuntimeError("repro.__version__ not found")
    return match.group(1)


def _read_readme() -> str:
    readme = _HERE / "README.md"
    return readme.read_text(encoding="utf-8") if readme.exists() else ""


setup(
    name="repro-perf-aware-pruning",
    version=_read_version(),
    description=(
        "Reproduction of 'Performance Aware Convolutional Neural Network "
        "Channel Pruning for Embedded GPUs' (IISWC 2019) on an analytical "
        "embedded-GPU simulator"
    ),
    long_description=_read_readme(),
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.experiments.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
