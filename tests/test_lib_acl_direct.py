"""Tests for the ACL Direct convolution planning model (Table V, Figs 10-12)."""

import pytest

from repro.libraries import LibraryError, channel_divisibility, select_workgroup
from repro.libraries.acl_direct import kernel_efficiency


class TestWorkgroupSelection:
    """Table V: the workgroup size the library picks per channel count."""

    def test_divisibility(self):
        assert channel_divisibility(92) == 4
        assert channel_divisibility(90) == 2
        assert channel_divisibility(91) == 1
        assert channel_divisibility(93) == 1

    @pytest.mark.parametrize(
        "channels,expected",
        [(90, (2, 1, 8)), (91, (1, 1, 8)), (92, (4, 1, 1)), (93, (1, 1, 8))],
    )
    def test_table5_workgroups(self, layer16, channels, expected):
        spec = layer16.with_out_channels(channels)
        assert select_workgroup(spec).as_tuple() == expected

    def test_original_sizes_use_wide_workgroup(self, resnet50):
        # All stock ResNet-50 filter counts are multiples of 4.
        for ref in resnet50.conv_layers():
            assert select_workgroup(ref.spec).as_tuple() == (4, 1, 1)


class TestEfficiencyModel:
    def test_pointwise_layers_lose_more_from_odd_channels(self, layer14, layer16):
        pointwise_odd, _ = kernel_efficiency(layer14.with_out_channels(511))
        spatial_odd, _ = kernel_efficiency(layer16.with_out_channels(127))
        pointwise_full, _ = kernel_efficiency(layer14)
        spatial_full, _ = kernel_efficiency(layer16)
        assert pointwise_odd / pointwise_full < spatial_odd / spatial_full

    def test_narrow_workgroup_hurts_locality_on_large_maps(self, resnet50):
        large_map = resnet50.conv_layer(1).spec  # 56x56 input
        small_map = resnet50.conv_layer(47).spec  # 7x7 input
        _, large_locality = kernel_efficiency(large_map.with_out_channels(63))
        _, small_locality = kernel_efficiency(small_map.with_out_channels(511))
        assert large_locality < small_locality

    def test_multiple_of_four_is_fully_efficient(self, layer16):
        efficiency, locality = kernel_efficiency(layer16)
        assert efficiency == 1.0
        assert locality == 1.0


class TestPlanStructure:
    def test_single_kernel_single_job(self, acl_direct, layer16, hikey):
        plan = acl_direct.plan(layer16, hikey)
        assert len(plan) == 1
        assert plan.job_count == 1

    def test_kernel_name_reflects_filter_size(self, acl_direct, layer16, layer14, hikey):
        assert acl_direct.plan(layer16, hikey).kernel_names() == ["direct_convolution3x3_nhwc"]
        assert acl_direct.plan(layer14, hikey).kernel_names() == ["direct_convolution1x1_nhwc"]

    def test_instructions_scale_with_macs(self, acl_direct, layer16, hikey):
        half = acl_direct.plan_with_channels(layer16, 64, hikey)
        full = acl_direct.plan_with_channels(layer16, 128, hikey)
        ratio = full.total_arithmetic_instructions / half.total_arithmetic_instructions
        assert ratio == pytest.approx(2.0, rel=0.01)

    def test_rejects_cuda_devices(self, acl_direct, layer16, tx2):
        with pytest.raises(LibraryError):
            acl_direct.plan(layer16, tx2)


class TestSimulatedBehaviour:
    def test_three_execution_levels(self, acl_direct, layer14, hikey, hikey_simulator):
        """Figure 12: three alternating latency levels for a 1x1 layer."""

        times = {
            divisibility: hikey_simulator.run_time_ms(
                acl_direct.plan_with_channels(layer14, channels, hikey)
            )
            for divisibility, channels in ((4, 508), (2, 510), (1, 509))
        }
        assert times[4] < times[2] < times[1]
        assert times[1] / times[4] > 1.5

    def test_pruning_one_channel_causes_slowdown(self, acl_direct, layer14, hikey, hikey_simulator):
        """Figure 10: prune=1 gives sub-unit speedups (slowdowns) for 1x1 layers."""

        original = hikey_simulator.run_time_ms(acl_direct.plan(layer14, hikey))
        pruned = hikey_simulator.run_time_ms(acl_direct.plan_with_channels(layer14, 511, hikey))
        speedup = original / pruned
        assert speedup < 0.8

    def test_3x3_layers_only_mildly_affected(self, acl_direct, layer16, hikey, hikey_simulator):
        original = hikey_simulator.run_time_ms(acl_direct.plan(layer16, hikey))
        pruned = hikey_simulator.run_time_ms(acl_direct.plan_with_channels(layer16, 127, hikey))
        speedup = original / pruned
        assert 0.6 < speedup <= 1.05

    def test_instruction_increase_is_tiny_but_slowdown_is_not(
        self, acl_direct, layer16, hikey, hikey_simulator
    ):
        """Table V: ~1% more instructions per channel, far larger runtime swings."""

        plan_90 = acl_direct.plan_with_channels(layer16, 90, hikey)
        plan_91 = acl_direct.plan_with_channels(layer16, 91, hikey)
        instruction_ratio = plan_91.total_instructions / plan_90.total_instructions
        assert instruction_ratio < 1.03
        time_ratio = (
            hikey_simulator.run_time_ms(plan_91) / hikey_simulator.run_time_ms(plan_90)
        )
        assert time_ratio > 1.08

    def test_direct_slower_than_gemm(self, acl_direct, acl_gemm, layer16, hikey, hikey_simulator):
        """Section IV-A.2: direct convolution is generally the slower method."""

        direct_time = hikey_simulator.run_time_ms(acl_direct.plan(layer16, hikey))
        gemm_time = hikey_simulator.run_time_ms(acl_gemm.plan(layer16, hikey))
        assert direct_time > gemm_time

    def test_deep_pruning_gives_large_speedups(self, acl_direct, layer16, hikey, hikey_simulator):
        """Figure 10: >10x speedups at a pruning distance of 127 channels."""

        original = hikey_simulator.run_time_ms(acl_direct.plan(layer16, hikey))
        tiny = hikey_simulator.run_time_ms(acl_direct.plan_with_channels(layer16, 4, hikey))
        assert original / tiny > 5.0
