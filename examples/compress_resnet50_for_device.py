#!/usr/bin/env python
"""Compress ResNet-50 to a latency budget on a chosen embedded GPU.

The scenario from the paper's introduction: a model designed for server
GPUs has to run on a phone-class device within a frame budget.  The
performance-aware pruner profiles every layer on the target, restricts
pruning to step-optimal channel counts and greedily trades latency
against a predicted accuracy signal until the budget is met — then
compares the result against uninstructed (uniform) pruning tuned to hit
roughly the same latency.

Run with ``python examples/compress_resnet50_for_device.py [device] [library]``
(defaults: hikey-970, acl-gemm).
"""

from __future__ import annotations

import sys

from repro.api import Session, Target

#: Profile a representative cross-section of ResNet-50's unique layer
#: shapes to keep the example quick; the same code scales to all layers.
LAYERS = (1, 2, 3, 11, 12, 15, 16, 24, 29, 43, 48)


def main() -> None:
    device = sys.argv[1] if len(sys.argv) > 1 else "hikey-970"
    library = sys.argv[2] if len(sys.argv) > 2 else "acl-gemm"

    session = Session()
    network = session.network("resnet50")
    pruner = session.pruner(Target(device, library, runs=3))

    baseline_ms = pruner.network_latency_ms(network, layer_indices=list(LAYERS))
    budget_ms = baseline_ms * 0.72
    print(f"Target: {library} on {device}")
    print(f"Baseline latency over {len(LAYERS)} profiled layers: {baseline_ms:.1f} ms")
    print(f"Latency budget: {budget_ms:.1f} ms (72% of baseline)\n")

    outcome = pruner.prune_for_latency(network, budget_ms, layer_indices=list(LAYERS))
    print("Performance-aware compression:")
    print(f"  latency  {outcome.latency_ms:8.1f} ms   (speedup {outcome.speedup:.2f}x)")
    print(f"  accuracy {outcome.predicted_accuracy:8.4f}     "
          f"(drop {outcome.accuracy_drop * 100:.2f} points, proxy model)")
    print("  per-layer channels:")
    for index in sorted(outcome.channels):
        original = network.conv_layer(index).spec.out_channels
        kept = outcome.channels[index]
        marker = "" if kept == original else f"   <- pruned {original - kept}"
        print(f"    L{index:<3} {original:>5} -> {kept:>5}{marker}")

    # Uninstructed baseline: uniform fraction chosen to remove a similar
    # share of channels, with no knowledge of the target.
    pruned_fraction = 1.0 - (
        sum(outcome.channels.values())
        / sum(network.conv_layer(i).spec.out_channels for i in LAYERS)
    )
    naive = pruner.prune_uninstructed(network, pruned_fraction, layer_indices=list(LAYERS))
    print(f"\nUninstructed pruning of the same overall fraction ({pruned_fraction:.0%}):")
    print(f"  latency  {naive.latency_ms:8.1f} ms   (speedup {naive.speedup:.2f}x)")
    print(f"  accuracy {naive.predicted_accuracy:8.4f}")
    advantage = naive.latency_ms / outcome.latency_ms
    print(f"\nPerformance-aware pruning is {advantage:.2f}x faster at matched compression.")


if __name__ == "__main__":
    main()
