"""Tests for the declarative Plan job graph and its JSON wire format."""

import pytest

from repro.api import Plan, PlanError, PruningRequest, Step, Target
from repro.models import ConvLayerSpec

TARGET = Target("hikey-970", "acl-gemm")
OTHER_TARGET = Target("jetson-tx2", "cudnn")

LAYER = ConvLayerSpec(
    name="test.plan.conv", in_channels=16, out_channels=24,
    kernel_size=3, stride=1, padding=1, input_hw=14,
)

REQUEST = PruningRequest(
    "resnet50", TARGET, fraction=0.25, layer_indices=(16,), sweep_step=8
)


def build_plan() -> Plan:
    plan = Plan()
    sweep = plan.sweep([TARGET, OTHER_TARGET], LAYER, sweep_step=4)
    profile = plan.profile(TARGET, "resnet50", layer_indices=[16], sweep_step=8)
    plan.prune(REQUEST, depends_on=[sweep.id])
    plan.compare(REQUEST, depends_on=[sweep.id, profile.id])
    plan.figure("fig04", runs=3, step=3)
    return plan


class TestBuilders:
    def test_steps_get_generated_ids_in_order(self):
        plan = build_plan()
        assert [step.id for step in plan] == [
            "sweep-1", "profile-1", "prune-1", "compare-1", "figure-1",
        ]
        assert [step.kind for step in plan] == [
            "sweep", "profile", "prune", "compare", "figure",
        ]

    def test_explicit_step_ids_and_lookup(self):
        plan = Plan()
        step = plan.sweep(TARGET, LAYER, step_id="my-sweep")
        assert plan.step("my-sweep") is step
        assert "my-sweep" in plan
        with pytest.raises(PlanError, match="unknown step id"):
            plan.step("absent")

    def test_builder_normalises_target_spellings(self):
        plan = Plan()
        step = plan.sweep(["acl-gemm@hikey-970"], LAYER)
        assert step.params["targets"][0]["device"] == "hikey-970"

    def test_duplicate_layer_names_rejected(self):
        impostor = ConvLayerSpec(
            name=LAYER.name, in_channels=8, out_channels=16,
            kernel_size=1, stride=1, padding=0, input_hw=7,
        )
        with pytest.raises(PlanError, match="two different layer specs"):
            Plan().sweep(TARGET, [LAYER, impostor])

    def test_figure_options_are_kept(self):
        plan = Plan()
        step = plan.figure("fig04", runs=3, step=5)
        assert step.params["options"] == {"runs": 3, "step": 5}


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown step kind"):
            Plan().add(Step(id="x", kind="teleport"))

    def test_duplicate_id_rejected(self):
        plan = Plan()
        plan.sweep(TARGET, LAYER, step_id="dup")
        with pytest.raises(PlanError, match="duplicate step id"):
            plan.sweep(TARGET, LAYER, step_id="dup")

    def test_forward_dependency_rejected(self):
        plan = Plan()
        with pytest.raises(PlanError, match="unknown step"):
            plan.sweep(TARGET, LAYER, depends_on=["later"])

    def test_unknown_model_rejected_up_front(self):
        with pytest.raises(PlanError, match="unknown model"):
            Plan().profile(TARGET, "resnet-9000")

    def test_unknown_experiment_rejected_up_front(self):
        with pytest.raises(PlanError, match="unknown experiment"):
            Plan().figure("fig99")

    def test_unknown_target_rejected_up_front(self):
        with pytest.raises(ValueError):
            Plan().sweep([("warp-core", "acl-gemm")], LAYER)

    def test_empty_sweep_rejected(self):
        with pytest.raises(PlanError, match="at least one target"):
            Plan().sweep([], LAYER)
        with pytest.raises(PlanError, match="at least one layer"):
            Plan().sweep(TARGET, [])

    def test_bad_sweep_step_rejected(self):
        with pytest.raises(PlanError, match="sweep_step"):
            Plan().sweep(TARGET, LAYER, sweep_step=0)

    def test_invalid_strategy_rejected(self):
        with pytest.raises(PlanError, match="unknown strategy"):
            Plan().compare(REQUEST, strategies=["telepathic"])

    def test_unknown_step_params_rejected(self):
        with pytest.raises(PlanError, match="unknown params"):
            Plan().add(Step(
                id="x", kind="prune",
                params={"request": REQUEST.to_dict(), "surprise": 1},
            ))

    def test_missing_step_params_rejected(self):
        with pytest.raises(PlanError, match="missing required params"):
            Plan().add(Step(id="x", kind="sweep", params={}))


class TestSerialization:
    def test_json_round_trip_is_identity(self):
        plan = build_plan()
        clone = Plan.from_json(plan.to_json())
        assert clone == plan
        assert clone.to_dict() == plan.to_dict()

    def test_round_trip_preserves_dependencies(self):
        plan = build_plan()
        clone = Plan.from_json(plan.to_json(indent=2))
        assert clone.step("compare-1").depends_on == ("sweep-1", "profile-1")

    def test_invalid_json_rejected(self):
        with pytest.raises(PlanError, match="not valid JSON"):
            Plan.from_json("{nope")

    def test_wrong_version_rejected(self):
        with pytest.raises(PlanError, match="unsupported plan version"):
            Plan.from_dict({"version": 99, "steps": []})

    def test_invalid_step_payload_rejected(self):
        with pytest.raises(PlanError, match="unknown step kind"):
            Plan.from_dict({
                "version": 1,
                "steps": [{"id": "x", "kind": "nope", "params": {}}],
            })

    def test_step_payload_with_bad_dependency_rejected(self):
        payload = {
            "version": 1,
            "steps": [{
                "id": "x", "kind": "prune",
                "params": {"request": REQUEST.to_dict()},
                "depends_on": ["ghost"],
            }],
        }
        with pytest.raises(PlanError, match="unknown step"):
            Plan.from_dict(payload)

    def test_step_payload_with_unknown_field_rejected(self):
        payload = {
            "version": 1,
            "steps": [{"id": "x", "kind": "prune", "params": {}, "color": "red"}],
        }
        with pytest.raises(PlanError, match="unknown step fields"):
            Plan.from_dict(payload)

    def test_layer_specs_survive_the_round_trip(self):
        plan = Plan()
        plan.sweep(TARGET, LAYER, step_id="s")
        clone = Plan.from_json(plan.to_json())
        rebuilt = ConvLayerSpec.from_dict(clone.step("s").params["layers"][0])
        assert rebuilt == LAYER
