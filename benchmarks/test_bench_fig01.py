"""Figure 1: maximum slowdown per ResNet-50 layer, ACL GEMM on Mali G72."""

from conftest import run_benchmarked


def test_fig01_slowdown_heatmap(benchmark):
    result = run_benchmarked(benchmark, "fig01", runs=1)
    # The paper reports slowdowns up to ~2x when pruning up to 63 channels.
    assert result.measured["max_value"] > 1.5
    # No configuration within one channel of the original is catastrophically
    # slower under the GEMM path (unlike the Direct path of Figure 10).
    prune1_row = result.data["rows"][1]
    assert all(value < 2.5 for value in prune1_row)
