"""Persistent on-disk profile store: measurements that outlive the process.

Every profile used to die with the Python process, so each CLI
invocation and every experiment script re-simulated thousands of
(device, library, layer, channel count) configurations from scratch.
:class:`ProfileStore` persists :class:`~repro.profiling.runner.Measurement`
records to a JSON-lines file so that repeated invocations reuse them:
a :class:`~repro.api.Session` built with ``store=PATH`` (or the
``repro-experiments --profile-store PATH`` flag) reads existing
measurements before touching the simulator and appends whatever it had
to measure fresh.

File format
-----------
One JSON object per line, append-only.  Each line records one measured
sweep under its grouping key::

    {"v": 1, "device": "mali-g72", "library": "acl-gemm", "runs": 3,
     "spec": {...layer spec fields...}, "spec_hash": "4f0c...",
     "sweep": [1, 2, ...], "measurements": [{...}, ...]}

* ``v`` is :data:`STORE_VERSION`.  Lines written by an incompatible
  store (or by a build with a different measurement-noise model, which
  bumps the version) are skipped on load — stale entries invalidate
  themselves and are simply re-measured and re-appended.
* The grouping key is ``(device, library, runs, spec_hash)`` where
  ``spec_hash`` fingerprints every latency-relevant layer-spec field
  *except* ``out_channels`` (the swept quantity).
* Lines that fail to parse are ignored (a truncated final line from a
  killed process does not poison the store).

Append-only JSONL keeps concurrent writers safe on POSIX filesystems
and makes the store trivially inspectable and diff-able.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..models.layers import ConvLayerSpec
from .runner import Measurement

#: Bump whenever the measurement model changes (simulator cost formulas,
#: noise model, Measurement schema): old lines are skipped on load.
STORE_VERSION = 1

_GroupKey = Tuple[str, str, int, str]


class ProfileStoreError(ValueError):
    """Raised for unusable store paths or malformed store operations."""


def layer_spec_fingerprint(spec: ConvLayerSpec) -> str:
    """Stable hash of the latency-relevant spec fields, minus ``out_channels``.

    ``out_channels`` is the swept quantity — measurements at different
    channel counts of the same base layer share one group.
    """

    payload = {
        "name": spec.name,
        "in_channels": spec.in_channels,
        "kernel_size": spec.kernel_size,
        "stride": spec.stride,
        "padding": spec.padding,
        "input_hw": spec.input_hw,
        "groups": spec.groups,
        "bias": spec.bias,
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


class ProfileStore:
    """Append-only JSONL store of measurements, indexed in memory.

    The file is read once, lazily, on first lookup; records appended
    through :meth:`record` update both the file and the index.  ``hits``
    / ``misses`` count per-configuration lookups, ``writes`` counts
    appended measurements.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.exists() and self.path.is_dir():
            raise ProfileStoreError(f"profile store path {self.path} is a directory")
        self._index: Optional[Dict[_GroupKey, Dict[int, Measurement]]] = None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.skipped_lines = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self) -> Dict[_GroupKey, Dict[int, Measurement]]:
        if self._index is not None:
            return self._index
        index: Dict[_GroupKey, Dict[int, Measurement]] = {}
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                        if payload.get("v") != STORE_VERSION:
                            raise ValueError("incompatible store version")
                        key = (
                            payload["device"],
                            payload["library"],
                            int(payload["runs"]),
                            payload["spec_hash"],
                        )
                        measurements = [
                            Measurement(**entry) for entry in payload["measurements"]
                        ]
                    except (ValueError, KeyError, TypeError):
                        self.skipped_lines += 1
                        continue
                    group = index.setdefault(key, {})
                    for measurement in measurements:
                        group[measurement.out_channels] = measurement
        self._index = index
        return index

    def __len__(self) -> int:
        """Number of stored (configuration -> measurement) entries."""

        return sum(len(group) for group in self._load().values())

    # ------------------------------------------------------------------
    # Lookup and record
    # ------------------------------------------------------------------
    @staticmethod
    def _key(device: str, library: str, runs: int, spec: ConvLayerSpec) -> _GroupKey:
        return (device, library, runs, layer_spec_fingerprint(spec))

    def lookup(
        self,
        device: str,
        library: str,
        runs: int,
        spec: ConvLayerSpec,
        channel_counts: Sequence[int],
    ) -> Tuple[Dict[int, Measurement], List[int]]:
        """Split a sweep into (stored measurements, counts still to measure)."""

        group = self._load().get(self._key(device, library, runs, spec), {})
        found: Dict[int, Measurement] = {}
        missing: List[int] = []
        for count in channel_counts:
            measurement = group.get(count)
            if measurement is None:
                missing.append(count)
            else:
                found[count] = measurement
        self.hits += len(found)
        self.misses += len(missing)
        return found, missing

    def record(
        self,
        device: str,
        library: str,
        runs: int,
        spec: ConvLayerSpec,
        measurements: Iterable[Measurement],
    ) -> None:
        """Append one measured sweep to the store file and the index."""

        measurements = list(measurements)
        if not measurements:
            return
        key = self._key(device, library, runs, spec)
        payload = {
            "v": STORE_VERSION,
            "device": device,
            "library": library,
            "runs": runs,
            "spec": {
                "name": spec.name,
                "in_channels": spec.in_channels,
                "out_channels": spec.out_channels,
                "kernel_size": spec.kernel_size,
                "stride": spec.stride,
                "padding": spec.padding,
                "input_hw": spec.input_hw,
                "groups": spec.groups,
                "bias": spec.bias,
            },
            "spec_hash": key[3],
            "sweep": [measurement.out_channels for measurement in measurements],
            "measurements": [measurement.as_dict() for measurement in measurements],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload) + "\n")
        group = self._load().setdefault(key, {})
        for measurement in measurements:
            group[measurement.out_channels] = measurement
        self.writes += len(measurements)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "entries": len(self),
            "skipped_lines": self.skipped_lines,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ProfileStore path={str(self.path)!r} entries={len(self)} "
            f"hits={self.hits} misses={self.misses} writes={self.writes}>"
        )


__all__ = ["STORE_VERSION", "ProfileStore", "ProfileStoreError", "layer_spec_fingerprint"]
