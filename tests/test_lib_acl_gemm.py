"""Tests for the ACL GEMM planning model (Tables I-IV, Figures 3/14/15)."""

import pytest

from repro.gpusim import GpuSimulator
from repro.libraries import LibraryError, pad_channels, split_columns
from repro.libraries.acl_gemm import (
    GEMM_ARITH_PER_COLUMN,
    GEMM_MEM_PER_COLUMN,
    RESHAPE_ARITH,
)


class TestChannelPadding:
    def test_multiples_of_four_unchanged(self):
        for channels in (4, 92, 96, 128, 2048):
            assert pad_channels(channels) == channels

    def test_padding_rounds_up_to_four(self):
        assert pad_channels(93) == 96
        assert pad_channels(97) == 100
        assert pad_channels(1) == 4


class TestSplitHeuristic:
    """The kernel-split rule reverse-engineered from Tables I-IV."""

    def test_92_channels_split_80_plus_12(self):
        split = split_columns(92)
        assert split.is_split
        assert (split.main_columns, split.remainder_columns) == (80, 12)

    @pytest.mark.parametrize("channels", [93, 94, 95, 96])
    def test_93_to_96_channels_single_96_column_kernel(self, channels):
        split = split_columns(channels)
        assert not split.is_split
        assert split.main_columns == 96

    def test_97_channels_split_96_plus_4(self):
        split = split_columns(97)
        assert split.is_split
        assert (split.main_columns, split.remainder_columns) == (96, 4)

    def test_76_split_but_78_single(self):
        """Figure 14: 78 channels run 1.83x faster than 76."""

        assert split_columns(76).is_split
        assert not split_columns(78).is_split

    def test_2024_single_but_2036_split(self):
        """Figure 15: 2024 channels run ~2.6x faster than 2036."""

        assert not split_columns(2024).is_split
        assert split_columns(2036).is_split

    def test_total_columns_cover_padded_channels(self):
        for channels in range(1, 200):
            split = split_columns(channels)
            assert split.total_columns == pad_channels(channels)

    def test_small_layers_never_split(self):
        for channels in range(1, 16):
            assert not split_columns(channels).is_split

    def test_multiples_of_eight_never_split(self):
        for channels in range(8, 2064, 8):
            assert not split_columns(channels).is_split


class TestPlanStructure:
    def test_kernel_names_match_paper(self, acl_gemm, layer16, hikey):
        plan = acl_gemm.plan_with_channels(layer16, 93, hikey)
        assert plan.kernel_names() == ["im2col3x3_nhwc", "reshape_to_columns", "gemm_mm"]

    def test_split_configuration_has_two_gemm_kernels(self, acl_gemm, layer16, hikey):
        plan = acl_gemm.plan_with_channels(layer16, 92, hikey)
        assert len(plan.kernels_named("gemm_mm")) == 2

    def test_only_gemm_kernels_dispatch_jobs(self, acl_gemm, layer16, hikey):
        plan = acl_gemm.plan_with_channels(layer16, 97, hikey)
        assert plan.job_count == 2
        for kernel in plan:
            assert kernel.dispatches_job == (kernel.name == "gemm_mm")

    def test_pointwise_layer_uses_1x1_im2col_kernel(self, acl_gemm, layer14, hikey):
        plan = acl_gemm.plan(layer14, hikey)
        assert plan.kernel_names()[0] == "im2col1x1_nhwc"

    def test_rejects_cuda_devices(self, acl_gemm, layer16, tx2):
        with pytest.raises(LibraryError):
            acl_gemm.plan(layer16, tx2)

    def test_reshape_cost_independent_of_channels(self, acl_gemm, layer16, hikey):
        plans = [acl_gemm.plan_with_channels(layer16, c, hikey) for c in (64, 92, 128)]
        costs = {plan.find("reshape_to_columns").arithmetic_instructions for plan in plans}
        assert len(costs) == 1

    def test_im2col_cost_grows_with_channels(self, acl_gemm, layer16, hikey):
        small = acl_gemm.plan_with_channels(layer16, 64, hikey).find("im2col3x3_nhwc")
        large = acl_gemm.plan_with_channels(layer16, 128, hikey).find("im2col3x3_nhwc")
        assert large.arithmetic_instructions > small.arithmetic_instructions


class TestCalibration:
    """The instruction model reproduces Tables I-IV exactly for layer 16."""

    def test_gemm_per_column_constants(self):
        assert GEMM_ARITH_PER_COLUMN == 848_055_936 // 96
        assert GEMM_MEM_PER_COLUMN == 43_521_408 // 96

    def test_table2_gemm_kernel(self, acl_gemm, layer16, hikey):
        plan = acl_gemm.plan_with_channels(layer16, 93, hikey)
        gemm = plan.find("gemm_mm")
        assert gemm.arithmetic_instructions == 848_055_936
        assert gemm.memory_instructions == 43_521_408

    def test_table1_split_gemm_kernels(self, acl_gemm, layer16, hikey):
        plan = acl_gemm.plan_with_channels(layer16, 92, hikey)
        main, remainder = plan.kernels_named("gemm_mm")
        assert main.arithmetic_instructions == 706_713_280
        assert main.memory_instructions == 36_267_840
        assert remainder.arithmetic_instructions == 106_006_992
        assert remainder.memory_instructions == 5_440_176

    def test_table4_remainder_kernel(self, acl_gemm, layer16, hikey):
        plan = acl_gemm.plan_with_channels(layer16, 97, hikey)
        _, remainder = plan.kernels_named("gemm_mm")
        assert remainder.arithmetic_instructions == 35_335_664
        assert remainder.memory_instructions == 1_813_392

    def test_reshape_instruction_counts(self, acl_gemm, layer16, hikey):
        plan = acl_gemm.plan_with_channels(layer16, 96, hikey)
        reshape = plan.find("reshape_to_columns")
        assert reshape.arithmetic_instructions == RESHAPE_ARITH == 44_183_104
        assert reshape.memory_instructions == 3_615_808

    def test_im2col_instruction_counts(self, acl_gemm, layer16, hikey):
        expected = {92: (1_365_198, 212_152), 93: (1_379_034, 214_458),
                    96: (1_420_542, 221_376), 97: (1_434_378, 223_682)}
        for channels, (arith, mem) in expected.items():
            kernel = acl_gemm.plan_with_channels(layer16, channels, hikey).find("im2col3x3_nhwc")
            assert kernel.arithmetic_instructions == arith
            assert kernel.memory_instructions == mem


class TestSimulatedBehaviour:
    """The planner + simulator reproduce the paper's latency anomalies."""

    def test_92_slower_than_93_despite_less_work(self, acl_gemm, layer16, hikey, hikey_simulator):
        plan_92 = acl_gemm.plan_with_channels(layer16, 92, hikey)
        plan_93 = acl_gemm.plan_with_channels(layer16, 93, hikey)
        assert plan_92.total_arithmetic_instructions < plan_93.total_arithmetic_instructions
        time_92 = hikey_simulator.run_time_ms(plan_92)
        time_93 = hikey_simulator.run_time_ms(plan_93)
        assert time_92 > time_93
        # The paper measures 23 ms vs 14 ms (a ~1.64x gap).
        assert 1.3 < time_92 / time_93 < 2.1

    def test_97_slower_than_96(self, acl_gemm, layer16, hikey, hikey_simulator):
        time_97 = hikey_simulator.run_time_ms(acl_gemm.plan_with_channels(layer16, 97, hikey))
        time_96 = hikey_simulator.run_time_ms(acl_gemm.plan_with_channels(layer16, 96, hikey))
        assert 1.3 < time_97 / time_96 < 2.2

    def test_78_faster_than_76(self, acl_gemm, layer16, hikey, hikey_simulator):
        time_76 = hikey_simulator.run_time_ms(acl_gemm.plan_with_channels(layer16, 76, hikey))
        time_78 = hikey_simulator.run_time_ms(acl_gemm.plan_with_channels(layer16, 78, hikey))
        assert time_78 < time_76

    def test_2024_faster_than_2036(self, acl_gemm, layer45, hikey, hikey_simulator):
        time_2024 = hikey_simulator.run_time_ms(acl_gemm.plan_with_channels(layer45, 2024, hikey))
        time_2036 = hikey_simulator.run_time_ms(acl_gemm.plan_with_channels(layer45, 2036, hikey))
        assert time_2036 > 1.3 * time_2024

    def test_flat_within_vec4_groups(self, acl_gemm, layer16, hikey, hikey_simulator):
        times = [
            hikey_simulator.run_time_ms(acl_gemm.plan_with_channels(layer16, c, hikey))
            for c in (93, 94, 95, 96)
        ]
        assert max(times) / min(times) < 1.02

    def test_odroid_slower_than_hikey(self, acl_gemm, layer16, hikey, odroid):
        hikey_time = GpuSimulator(hikey).run_time_ms(acl_gemm.plan(layer16, hikey))
        odroid_time = GpuSimulator(odroid).run_time_ms(acl_gemm.plan(layer16, odroid))
        assert odroid_time > hikey_time
