"""Tests for staircase detection and optimal-channel selection."""

import pytest

from repro.core import (
    analyze_table,
    cluster_levels,
    detect_plateaus,
    detect_steps,
    optimal_pruning_levels,
)
from repro.profiling import LatencyTable, build_latency_table


def table_from(pairs):
    table = LatencyTable("synthetic", "device", "library")
    for channels, time in pairs:
        table.add(channels, time)
    return table


def staircase_pairs():
    """A clean two-step staircase: 1-4 -> 1ms, 5-8 -> 2ms, 9-12 -> 3ms."""

    return [(c, 1.0 + (c - 1) // 4) for c in range(1, 13)]


class TestDetectSteps:
    def test_clean_staircase_has_two_steps(self):
        counts, times = zip(*staircase_pairs())
        steps = detect_steps(list(counts), list(times))
        assert len(steps) == 2
        assert [step.channels_before for step in steps] == [4, 8]
        assert all(step.is_upward for step in steps)

    def test_flat_curve_has_no_steps(self):
        counts = list(range(1, 10))
        assert detect_steps(counts, [5.0] * 9) == []

    def test_small_noise_below_threshold_ignored(self):
        counts = [1, 2, 3]
        assert detect_steps(counts, [1.0, 1.02, 0.99]) == []

    def test_downward_step_detected(self):
        steps = detect_steps([1, 2], [2.0, 1.0])
        assert len(steps) == 1
        assert not steps[0].is_upward
        assert steps[0].ratio == pytest.approx(0.5)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            detect_steps([1, 2], [1.0])

    def test_non_positive_latency_rejected(self):
        with pytest.raises(ValueError):
            detect_steps([1, 2], [1.0, 0.0])


class TestDetectPlateaus:
    def test_plateau_boundaries(self):
        counts, times = zip(*staircase_pairs())
        plateaus = detect_plateaus(list(counts), list(times))
        assert [(p.min_channels, p.max_channels) for p in plateaus] == [(1, 4), (5, 8), (9, 12)]

    def test_optimal_channels_is_right_edge(self):
        counts, times = zip(*staircase_pairs())
        plateaus = detect_plateaus(list(counts), list(times))
        assert [p.optimal_channels for p in plateaus] == [4, 8, 12]

    def test_plateau_width(self):
        counts, times = zip(*staircase_pairs())
        assert all(p.width == 4 for p in detect_plateaus(list(counts), list(times)))

    def test_empty_input(self):
        assert detect_plateaus([], []) == []


class TestClusterLevels:
    def test_two_levels(self):
        levels = cluster_levels([1.0, 1.02, 2.0, 2.05, 1.01])
        assert len(levels) == 2

    def test_single_level(self):
        assert len(cluster_levels([3.0, 3.01, 2.99])) == 1

    def test_levels_sorted_ascending(self):
        levels = cluster_levels([5.0, 1.0, 3.0])
        assert levels == sorted(levels)


class TestAnalyzeTable:
    def test_synthetic_staircase_analysis(self):
        table = table_from(staircase_pairs())
        analysis = analyze_table(table)
        assert analysis.level_count == 3
        assert analysis.optimal_channel_counts == [4, 8, 12]
        assert analysis.max_step_ratio == pytest.approx(2.0)
        assert not analysis.has_downward_steps()

    def test_parallel_staircase_has_downward_steps(self):
        # Alternating fast/slow plateaus, as in the ACL GEMM figures.
        pairs = [(1, 2.0), (2, 2.0), (3, 1.0), (4, 1.0), (5, 3.0), (6, 3.0), (7, 1.5), (8, 1.5)]
        analysis = analyze_table(table_from(pairs))
        assert analysis.has_downward_steps()

    def test_optimal_pruning_levels_include_max(self):
        table = table_from(staircase_pairs())
        levels = optimal_pruning_levels(table)
        assert 12 in levels
        assert levels == [4, 8, 12]

    def test_optimal_pruning_levels_respect_upper_bound(self):
        table = table_from(staircase_pairs())
        assert optimal_pruning_levels(table, max_channels=9) == [4, 8, 9]


class TestOnMeasuredData:
    def test_cudnn_staircase_structure(self, cudnn_runner, layer16):
        """The measured cuDNN curve has steps exactly at tile boundaries."""

        table = build_latency_table(cudnn_runner, layer16, range(1, 129))
        analysis = analyze_table(table)
        step_positions = {step.channels_before for step in analysis.steps}
        assert step_positions == {32, 64, 96}
        assert analysis.level_count == 4
        assert not analysis.has_downward_steps()

    def test_acl_gemm_has_parallel_staircases(self, gemm_runner, layer16):
        table = build_latency_table(gemm_runner, layer16, range(60, 129))
        analysis = analyze_table(table)
        assert analysis.has_downward_steps()
        assert analysis.level_count >= 2

    def test_optimal_levels_prefer_plateau_edges(self, cudnn_runner, layer16):
        table = build_latency_table(cudnn_runner, layer16, range(1, 129))
        levels = optimal_pruning_levels(table)
        assert {32, 64, 96, 128}.issubset(set(levels))
