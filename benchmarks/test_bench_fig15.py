"""Figure 15: large latency gap between 2024 and 2036 channels (L45)."""

from conftest import run_benchmarked


def test_fig15_gap_between_nearby_counts(benchmark):
    result = run_benchmarked(benchmark, "fig15", runs=1, step=64)
    # Paper: 2.57x between 2036 and 2024 channels; the simulator reproduces a
    # smaller but still dramatic gap driven by the same extra-job mechanism.
    assert result.measured["gap_2036_vs_2024"] > 1.3
