"""AST-based invariant checkers for the reproduction code base.

Importing this package registers the built-in checkers (RL001–RL005)
with :data:`CHECKERS`; the public entry point is :func:`run_lint`.
"""

from __future__ import annotations

from .engine import (
    CHECKERS,
    PARSE_ERROR_CODE,
    Checker,
    Finding,
    LintUsageError,
    ModuleSource,
    UnknownCheckerError,
    collect_files,
    register_checker,
    resolve_codes,
    run_lint,
)

# Importing the checks package registers every built-in checker.
from . import checks as _checks  # noqa: F401  (import for side effect)

__all__ = [
    "CHECKERS",
    "PARSE_ERROR_CODE",
    "Checker",
    "Finding",
    "LintUsageError",
    "ModuleSource",
    "UnknownCheckerError",
    "collect_files",
    "register_checker",
    "resolve_codes",
    "run_lint",
]
