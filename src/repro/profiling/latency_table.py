"""Latency tables: the profiled latency-vs-channels curves.

A :class:`LatencyTable` holds the measured latency of one layer for
every channel count of interest — the data behind the paper's staircase
figures and the input to the performance-aware pruning optimiser (which
needs to know, for every candidate pruning level, what the layer would
cost on the target).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..models.layers import ConvLayerSpec
from .runner import Measurement, ProfileRunner


class LatencyTableError(ValueError):
    """Raised when a latency table is queried or built without measurements."""


@dataclass
class LatencyTable:
    """Latency of a single layer as a function of its channel count."""

    layer_name: str
    device_name: str
    library_name: str
    entries: Dict[int, float] = field(default_factory=dict)

    def add(self, out_channels: int, time_ms: float) -> None:
        if out_channels < 1:
            raise ValueError(f"out_channels must be >= 1, got {out_channels}")
        if time_ms <= 0:
            raise ValueError(f"time_ms must be positive, got {time_ms}")
        self.entries[out_channels] = time_ms

    def add_measurement(self, measurement: Measurement) -> None:
        self.add(measurement.out_channels, measurement.median_time_ms)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, out_channels: int) -> bool:
        return out_channels in self.entries

    def _require_entries(self) -> None:
        if not self.entries:
            raise LatencyTableError(
                f"latency table for layer {self.layer_name!r} "
                f"({self.library_name} on {self.device_name}) has no measurements"
            )

    @property
    def channel_counts(self) -> List[int]:
        """Measured channel counts, ascending."""

        self._require_entries()
        return sorted(self.entries)

    @property
    def max_channels(self) -> int:
        self._require_entries()
        return max(self.entries)

    def time_ms(self, out_channels: int) -> float:
        """Latency of the layer at an exact measured channel count."""

        if out_channels not in self.entries:
            raise KeyError(
                f"{self.layer_name}: no measurement for {out_channels} channels"
            )
        return self.entries[out_channels]

    def as_series(self) -> Tuple[List[int], List[float]]:
        """(channel counts, times) as parallel ascending lists."""

        counts = self.channel_counts
        return counts, [self.entries[count] for count in counts]

    # ------------------------------------------------------------------
    def speedup(self, out_channels: int, baseline_channels: Optional[int] = None) -> float:
        """Speedup of a pruned configuration relative to a baseline.

        Values below 1.0 are the slowdowns the paper warns about.
        """

        baseline = self.max_channels if baseline_channels is None else baseline_channels
        return self.time_ms(baseline) / self.time_ms(out_channels)

    def best_channels_within(self, budget_ms: float) -> Optional[int]:
        """Largest measured channel count not exceeding a latency budget.

        This is the paper's "right side of a performance step" selection:
        for a given execution-time budget, keep as many channels (hence
        as much accuracy potential) as possible.
        """

        candidates = [
            count for count, time in self.entries.items() if time <= budget_ms
        ]
        return max(candidates) if candidates else None


def build_latency_table(
    runner: ProfileRunner,
    layer: ConvLayerSpec,
    channel_counts: Optional[Iterable[int]] = None,
) -> LatencyTable:
    """Measure a layer across channel counts and collect a latency table.

    ``runner`` may also be a :class:`repro.api.Target`, in which case a
    fresh (uncached) :class:`ProfileRunner` is built for it; pass a
    :class:`repro.api.Session`-owned runner to share measurements.
    """

    if not isinstance(runner, ProfileRunner):
        runner = ProfileRunner.for_target(runner)
    counts = (
        list(channel_counts)
        if channel_counts is not None
        else list(range(1, layer.out_channels + 1))
    )
    if not counts:
        raise LatencyTableError(
            f"cannot build a latency table for layer {layer.name!r} "
            f"from an empty channel sweep"
        )
    table = LatencyTable(
        layer_name=layer.name,
        device_name=runner.device.name,
        library_name=runner.library.name,
    )
    for measurement in runner.measure_many(layer, counts):
        table.add_measurement(measurement)
    return table


def prune_distances(original_channels: int, distances: Iterable[int]) -> List[int]:
    """Channel counts after pruning at the paper's "distances".

    The heatmap figures prune ``d`` channels for d in {1, 3, 7, 15, 31,
    63, 127}; distances that would leave no channels are clamped to one
    channel (the paper reports the last feasible value for shallow
    layers).
    """

    counts = []
    for distance in distances:
        if distance < 0:
            raise ValueError(f"prune distance must be non-negative, got {distance}")
        counts.append(max(1, original_channels - distance))
    return counts
