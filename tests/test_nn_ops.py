"""Tests for the non-convolutional operators and whole-network inference."""

import numpy as np
import pytest

from repro.models import (
    ActivationLayerSpec,
    BatchNormLayerSpec,
    ConvLayerSpec,
    DropoutLayerSpec,
    FullyConnectedLayerSpec,
    PoolLayerSpec,
    build_alexnet,
    build_sequential_network,
)
from repro.nn import (
    InferenceEngine,
    batch_norm,
    dropout,
    fully_connected,
    global_average_pool,
    pool2d,
    prune_weights,
    relu,
    run_single_layer,
    sigmoid,
    softmax,
    tanh,
)
from repro.nn.ops import activation


class TestActivations:
    def test_relu_clamps_negatives(self):
        out = relu(np.array([-1.0, 0.0, 2.5], dtype=np.float32))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.5])

    def test_tanh_range(self):
        out = tanh(np.linspace(-5, 5, 11).astype(np.float32))
        assert np.all(out >= -1.0) and np.all(out <= 1.0)

    def test_sigmoid_midpoint(self):
        assert sigmoid(np.zeros(1, dtype=np.float32))[0] == pytest.approx(0.5)

    def test_activation_dispatch(self):
        data = np.array([-1.0, 1.0], dtype=np.float32)
        np.testing.assert_array_equal(activation(data, ActivationLayerSpec(name="a", kind="relu")), [0.0, 1.0])

    def test_softmax_sums_to_one(self):
        probabilities = softmax(np.random.default_rng(0).standard_normal((3, 10)).astype(np.float32))
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, rtol=1e-5)

    def test_softmax_stable_for_large_logits(self):
        probabilities = softmax(np.array([[1000.0, 1000.0]], dtype=np.float32))
        np.testing.assert_allclose(probabilities, [[0.5, 0.5]])


class TestPooling:
    def test_max_pool_halves_spatial(self):
        spec = PoolLayerSpec(name="p", kernel_size=2, stride=2)
        out = pool2d(np.ones((1, 3, 8, 8), dtype=np.float32), spec)
        assert out.shape == (1, 3, 4, 4)

    def test_max_pool_picks_maximum(self):
        spec = PoolLayerSpec(name="p", kernel_size=2, stride=2)
        data = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool2d(data, spec)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_averages(self):
        spec = PoolLayerSpec(name="p", kernel_size=2, stride=2, mode="avg")
        data = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool2d(data, spec)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_padded_max_pool_ignores_padding(self):
        spec = PoolLayerSpec(name="p", kernel_size=3, stride=2, padding=1)
        data = -np.ones((1, 1, 4, 4), dtype=np.float32)
        out = pool2d(data, spec)
        assert np.all(out == -1.0)

    def test_global_average_pool(self):
        data = np.ones((2, 5, 7, 7), dtype=np.float32) * 3.0
        out = global_average_pool(data)
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out, 3.0)

    def test_requires_nchw(self):
        with pytest.raises(ValueError):
            pool2d(np.zeros((3, 8, 8), dtype=np.float32), PoolLayerSpec(name="p"))


class TestOtherOps:
    def test_batch_norm_preserves_shape(self):
        spec = BatchNormLayerSpec(name="bn", num_features=6)
        data = np.random.default_rng(0).standard_normal((2, 6, 4, 4)).astype(np.float32)
        assert batch_norm(data, spec).shape == data.shape

    def test_batch_norm_deterministic(self):
        spec = BatchNormLayerSpec(name="bn", num_features=3)
        data = np.ones((1, 3, 2, 2), dtype=np.float32)
        np.testing.assert_array_equal(batch_norm(data, spec), batch_norm(data, spec))

    def test_dropout_is_identity_at_inference(self):
        spec = DropoutLayerSpec(name="d", rate=0.5)
        data = np.random.default_rng(1).standard_normal((4, 4)).astype(np.float32)
        np.testing.assert_array_equal(dropout(data, spec), data)

    def test_fully_connected_shapes(self):
        spec = FullyConnectedLayerSpec(name="fc", in_features=32, out_features=10)
        out = fully_connected(np.ones((2, 32), dtype=np.float32), spec)
        assert out.shape == (2, 10)

    def test_fully_connected_flattens_input(self):
        spec = FullyConnectedLayerSpec(name="fc", in_features=2 * 4 * 4, out_features=5)
        out = fully_connected(np.ones((1, 2, 4, 4), dtype=np.float32), spec)
        assert out.shape == (1, 5)

    def test_fully_connected_feature_mismatch(self):
        spec = FullyConnectedLayerSpec(name="fc", in_features=10, out_features=5)
        with pytest.raises(ValueError):
            fully_connected(np.ones((1, 12), dtype=np.float32), spec)


class TestInferenceEngine:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            InferenceEngine(method="winograd")

    def test_run_single_layer_shapes(self, layer16):
        small = layer16.with_in_channels(8).with_out_channels(4)
        out = run_single_layer(small, method="gemm")
        assert out.shape == (1, 4, small.output_hw, small.output_hw)

    def test_gemm_and_direct_engines_agree(self):
        spec = ConvLayerSpec(name="eng.conv", in_channels=3, out_channels=5,
                             kernel_size=3, padding=1, input_hw=10)
        gemm = run_single_layer(spec, method="gemm")
        direct = run_single_layer(spec, method="direct")
        np.testing.assert_allclose(gemm, direct, rtol=1e-4, atol=1e-4)

    def test_run_network_end_to_end(self, alexnet):
        engine = InferenceEngine(method="gemm")
        result = engine.run_network(alexnet, batch=1)
        assert result.output.shape == (1, 1000)

    def test_run_network_keeps_activations(self):
        layers = [
            ConvLayerSpec(name="mini.conv", in_channels=3, out_channels=4,
                          kernel_size=3, padding=1, input_hw=8),
            ActivationLayerSpec(name="mini.relu"),
        ]
        network = build_sequential_network("Mini", layers, input_shape=(3, 8, 8))
        result = InferenceEngine().run_network(network, keep_activations=True)
        assert set(result.activations) == {"mini.conv", "mini.relu"}

    def test_stop_after_limits_layers(self, alexnet):
        engine = InferenceEngine()
        result = engine.run_network(alexnet, stop_after=2)
        # conv0 + relu: output still has conv0's 64 channels.
        assert result.output.shape[1] == 64

    def test_unsupported_layer_type_rejected(self):
        class FakeSpec:
            name = "fake"

        with pytest.raises(TypeError):
            InferenceEngine().run_layer(FakeSpec(), np.zeros((1, 1, 2, 2), dtype=np.float32))


class TestPruneWeights:
    def test_selects_rows(self):
        weights = np.arange(24, dtype=np.float32).reshape(4, 2, 1, 3)
        pruned = prune_weights(weights, [0, 2])
        np.testing.assert_array_equal(pruned, weights[[0, 2]])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            prune_weights(np.zeros((4, 1, 1, 1)), [1, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            prune_weights(np.zeros((4, 1, 1, 1)), [4])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            prune_weights(np.zeros((4, 1, 1, 1)), [])
