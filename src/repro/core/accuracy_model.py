"""Parametric accuracy-retention proxy.

The paper deliberately ignores accuracy when profiling latency
("we perform channel pruning without considering the accuracy impact,
but our channel pruning approach has the same effect on inference time
as when done with accuracy conditions"), and points to a companion work
[19] for the joint latency/accuracy optimisation it proposes in Section
V.  Reproducing that proposal requires *some* accuracy signal; since no
training data or frameworks are available in this environment, we use a
documented parametric proxy.

The proxy models the well-established empirical behaviour of channel
pruning with fine-tuning: accuracy is nearly flat for mild pruning and
degrades super-linearly as a layer approaches zero channels, with layers
weighted by their share of the network's parameters (heavily
over-parameterised layers tolerate more pruning).  The functional form —
a per-layer concave retention curve combined multiplicatively — is a
substitution for retraining, not a claim about any specific dataset; see
DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..models.graph import Network


@dataclass(frozen=True)
class AccuracyModel:
    """Accuracy proxy for a pruned network.

    ``baseline_accuracy`` is the unpruned top-1 accuracy.  ``sensitivity``
    scales how quickly accuracy degrades with pruning; ``exponent``
    controls the curvature (values > 1 make mild pruning nearly free,
    matching the pruning literature's retention curves).
    """

    baseline_accuracy: float = 0.76
    sensitivity: float = 0.35
    exponent: float = 2.0
    minimum_accuracy: float = 0.001

    def __post_init__(self) -> None:
        if not 0.0 < self.baseline_accuracy <= 1.0:
            raise ValueError(f"baseline_accuracy must be in (0, 1], got {self.baseline_accuracy}")
        if self.sensitivity < 0:
            raise ValueError(f"sensitivity must be non-negative, got {self.sensitivity}")
        if self.exponent < 1.0:
            raise ValueError(f"exponent must be >= 1, got {self.exponent}")

    # ------------------------------------------------------------------
    def layer_retention(self, kept_fraction: float) -> float:
        """Accuracy retention factor of one layer kept at a fraction of its size."""

        if not 0.0 < kept_fraction <= 1.0:
            raise ValueError(f"kept_fraction must be in (0, 1], got {kept_fraction}")
        pruned_fraction = 1.0 - kept_fraction
        penalty = self.sensitivity * (pruned_fraction ** self.exponent)
        return max(0.0, 1.0 - penalty)

    def predict(
        self,
        network: Network,
        channels: Optional[Mapping[int, int]] = None,
    ) -> float:
        """Predicted accuracy of a network with the given channel counts.

        ``channels`` maps conv layer index -> remaining channels; layers
        not mentioned keep their original size.  Per-layer penalties are
        weighted by each layer's share of the convolution parameters, so
        pruning a huge layer costs more than pruning a tiny one.
        """

        channels = dict(channels or {})
        refs = network.conv_layers()
        total_params = sum(ref.spec.parameter_count for ref in refs)
        if total_params == 0:
            return self.baseline_accuracy
        retention = 1.0
        for ref in refs:
            kept = channels.get(ref.index, ref.spec.out_channels)
            if not 1 <= kept <= ref.spec.out_channels:
                raise ValueError(
                    f"layer {ref.label}: invalid channel count {kept} "
                    f"(original {ref.spec.out_channels})"
                )
            weight = ref.spec.parameter_count / total_params
            layer_retention = self.layer_retention(kept / ref.spec.out_channels)
            retention *= 1.0 - weight * (1.0 - layer_retention)
        return max(self.minimum_accuracy, self.baseline_accuracy * retention)

    def accuracy_drop(
        self, network: Network, channels: Optional[Mapping[int, int]] = None
    ) -> float:
        """Absolute accuracy drop of a pruned configuration vs the baseline."""

        return self.baseline_accuracy - self.predict(network, channels)


#: Baseline ImageNet-style top-1 accuracies used by the examples.
DEFAULT_BASELINES: Dict[str, float] = {
    "ResNet": 0.7615,
    "VGG": 0.7159,
    "AlexNet": 0.5652,
}


def default_accuracy_model(network: Network) -> AccuracyModel:
    """Accuracy model with the conventional baseline for a zoo network."""

    baseline = DEFAULT_BASELINES.get(network.name, 0.70)
    return AccuracyModel(baseline_accuracy=baseline)
