"""System-level metric reports built on top of the simulator.

These helpers reproduce the Section IV-B analysis artefacts: the
per-kernel instruction tables (Tables I-IV), the workgroup-size table
(Table V) and the relative system-level counters (Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from .kernel import KernelPlan
from .simulator import SimulationResult


@dataclass(frozen=True)
class KernelInstructionRow:
    """One row of a Table I-IV style kernel instruction report."""

    kernel_name: str
    arithmetic_instructions: int
    memory_instructions: int


def kernel_instruction_table(plan: KernelPlan) -> List[KernelInstructionRow]:
    """Per-kernel instruction counts in dispatch order (Tables I-IV)."""

    return [
        KernelInstructionRow(
            kernel_name=kernel.name,
            arithmetic_instructions=kernel.arithmetic_instructions,
            memory_instructions=kernel.memory_instructions,
        )
        for kernel in plan
    ]


def format_instruction_table(plan: KernelPlan, title: str = "") -> str:
    """Render a kernel instruction table as fixed-width text."""

    rows = kernel_instruction_table(plan)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'Kernel Name':<24} {'No Arithm. Instr.':>20} {'No Mem. Instr.':>18}")
    for row in rows:
        lines.append(
            f"{row.kernel_name:<24} {row.arithmetic_instructions:>20,} "
            f"{row.memory_instructions:>18,}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class RelativeSystemCounters:
    """Figure 18: system counters relative to a baseline configuration."""

    label: str
    jobs: float
    control_register_reads: float
    control_register_writes: float
    interrupts: float
    runtime: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "jobs": self.jobs,
            "control_register_reads": self.control_register_reads,
            "control_register_writes": self.control_register_writes,
            "interrupts": self.interrupts,
            "runtime": self.runtime,
        }


def relative_system_counters(
    results: Mapping[str, SimulationResult],
    baseline_label: str,
) -> List[RelativeSystemCounters]:
    """Normalise counters of several simulation results against a baseline.

    ``results`` maps a configuration label (e.g. ``"92 Channels"``) to its
    simulation result; the baseline's counters become 1.0.
    """

    if baseline_label not in results:
        raise KeyError(
            f"baseline {baseline_label!r} not among results: {sorted(results)}"
        )
    baseline = results[baseline_label]
    base_counters = baseline.counters
    rows = []
    for label, result in results.items():
        counters = result.counters
        rows.append(
            RelativeSystemCounters(
                label=label,
                jobs=counters.jobs / base_counters.jobs,
                control_register_reads=(
                    counters.control_register_reads / base_counters.control_register_reads
                ),
                control_register_writes=(
                    counters.control_register_writes / base_counters.control_register_writes
                ),
                interrupts=counters.interrupts / base_counters.interrupts,
                runtime=result.total_time_s / baseline.total_time_s,
            )
        )
    return rows


@dataclass(frozen=True)
class WorkgroupRow:
    """One row of a Table V style workgroup report."""

    channels: int
    workgroup: Sequence[int]
    relative_instructions: float
    time_ms: float


def format_workgroup_table(rows: Sequence[WorkgroupRow]) -> str:
    """Render a Table V style workgroup-size report."""

    lines = [
        f"{'Channels':>8} {'X':>3} {'Y':>3} {'Z':>3} "
        f"{'Relative Instr.':>16} {'Time (ms)':>12}"
    ]
    for row in rows:
        x, y, z = row.workgroup
        lines.append(
            f"{row.channels:>8} {x:>3} {y:>3} {z:>3} "
            f"{row.relative_instructions:>16.3f} {row.time_ms:>12.4f}"
        )
    return "\n".join(lines)
