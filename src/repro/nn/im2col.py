"""image2col unrolling, the first stage of the GEMM convolution method.

The paper (Section II-A) describes the GEMM method as unrolling each
input patch into a column of a large matrix while filters are unrolled
into rows, after which the whole convolution is a single matrix-matrix
multiplication.  This module implements exactly that transformation and
its inverse bookkeeping (column counts, memory expansion factor).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..models.layers import ConvLayerSpec
from .tensor import pad_input


def im2col(
    inputs: np.ndarray,
    kernel_size: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Unroll an NCHW tensor into a patch matrix.

    Returns an array of shape ``(batch, in_c * k * k, out_h * out_w)``:
    one column per output spatial position, one row per element of the
    receptive field.
    """

    if inputs.ndim != 4:
        raise ValueError(f"im2col expects an NCHW tensor, got shape {inputs.shape}")
    batch, channels, height, width = inputs.shape
    padded = pad_input(inputs, padding)
    out_h = (height + 2 * padding - kernel_size) // stride + 1
    out_w = (width + 2 * padding - kernel_size) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"im2col produces an empty output for input {inputs.shape}, "
            f"kernel={kernel_size}, stride={stride}, padding={padding}"
        )

    # Gather windows with stride tricks, then reshape to the column matrix.
    strides = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(batch, channels, out_h, out_w, kernel_size, kernel_size),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # (batch, channels, k, k, out_h, out_w) -> (batch, channels*k*k, out_h*out_w)
    columns = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        batch, channels * kernel_size * kernel_size, out_h * out_w
    )
    return np.ascontiguousarray(columns)


def im2col_for_spec(inputs: np.ndarray, spec: ConvLayerSpec) -> np.ndarray:
    """Unroll inputs according to a convolution layer specification."""

    return im2col(inputs, spec.kernel_size, spec.stride, spec.padding)


def im2col_output_shape(spec: ConvLayerSpec) -> Tuple[int, int]:
    """Shape of the per-image patch matrix (rows, columns)."""

    return spec.im2col_matrix_shape


def memory_expansion_factor(spec: ConvLayerSpec) -> float:
    """How much larger the patch matrix is than the raw input.

    Section IV-A.2 of the paper notes this is "almost one order of
    magnitude more memory for a 3x3 filter" — for a stride-1 padded 3x3
    convolution the factor is ~9, which is what this helper reports.
    """

    rows, cols = spec.im2col_matrix_shape
    return (rows * cols) / float(spec.input_activation_count)
