"""Profiling: kernel event capture, median-of-N measurement, latency tables.

For cached cross-call profiling, prefer :meth:`repro.api.Session.profile_layer`
(the canonical entry point) over driving :class:`ProfileRunner` directly;
``ProfileRunner.for_target`` builds a runner from a :class:`repro.api.Target`.
Sweeps go through the vectorized batch path
(:meth:`ProfileRunner.measure_many`), and a :class:`ProfileStore` makes
measurements persistent across processes.
"""

from .events import KernelEvent, ProfiledRun
from .latency_table import (
    LatencyTable,
    LatencyTableError,
    build_latency_table,
    prune_distances,
)
from .profilers import (
    CudaEventProfiler,
    OpenCLProfiler,
    noise_factors,
    profile_runs,
    profiler_for_device,
)
from .runner import DEFAULT_RUNS, Measurement, MeasurementError, ProfileRunner
from .store import STORE_VERSION, ProfileStore, ProfileStoreError, layer_spec_fingerprint

__all__ = [
    "CudaEventProfiler",
    "DEFAULT_RUNS",
    "KernelEvent",
    "LatencyTable",
    "LatencyTableError",
    "Measurement",
    "MeasurementError",
    "OpenCLProfiler",
    "ProfileRunner",
    "ProfileStore",
    "ProfileStoreError",
    "ProfiledRun",
    "STORE_VERSION",
    "build_latency_table",
    "layer_spec_fingerprint",
    "noise_factors",
    "profile_runs",
    "profiler_for_device",
    "prune_distances",
]
