"""End-to-end tests of the HTTP service over a real localhost socket."""

import json
import threading
import urllib.request

import pytest

import repro
from repro.api import Plan, PruningRequest, Session, Target
from repro.api.executor import EXECUTORS, SerialExecutor
from repro.models import ConvLayerSpec
from repro.service import ReproServer, ServiceClient, ServiceError
from repro.service.results import step_result_payload

TARGETS = (Target("hikey-970", "acl-gemm"), Target("jetson-tx2", "cudnn"))


class HttpGateExecutor(SerialExecutor):
    """A serial executor that parks inside the step until released."""

    entered = threading.Event()
    release = threading.Event()

    def execute(self, session, plan):
        type(self).entered.set()
        assert type(self).release.wait(timeout=30.0), "gate never released"
        return super().execute(session, plan)


if "test-gate-http" not in EXECUTORS:
    EXECUTORS.register("test-gate-http", HttpGateExecutor)

LAYER = ConvLayerSpec(
    name="test.http.conv", in_channels=16, out_channels=24,
    kernel_size=3, stride=1, padding=1, input_hw=14,
)


def two_step_plan() -> Plan:
    plan = Plan()
    sweep = plan.sweep(TARGETS, LAYER, sweep_step=4)
    plan.prune(
        PruningRequest("resnet50", TARGETS[0], fraction=0.25,
                       layer_indices=(16,), sweep_step=8),
        depends_on=[sweep.id],
    )
    return plan


@pytest.fixture
def server(tmp_path):
    with ReproServer(
        profile_store=tmp_path / "profiles.jsonl",
        job_store=tmp_path / "jobs.jsonl",
    ) as running:
        yield running


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestEndpoints:
    def test_healthz_reports_ok(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["jobs"]["succeeded"] == 0

    def test_version_reports_the_package_version(self, client):
        version = client.version()
        assert version["version"] == repro.__version__
        assert {"serial", "batched", "process"}.issubset(set(version["executors"]))

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/v1/nope")
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/other/jobs")

    def test_unknown_job_is_404(self, client):
        for call in (lambda: client.job("job-missing"),
                     lambda: client.cancel("job-missing"),
                     lambda: list(client.iter_events("job-missing"))):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_invalid_plan_is_400_with_the_plan_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"version": 1, "steps": [{"id": "x", "kind": "warp"}]})
        assert excinfo.value.status == 400
        assert "unknown step kind" in str(excinfo.value)

    def test_bad_seed_executor_and_body_are_400(self, client, server):
        with pytest.raises(ServiceError, match="seed"):
            client.submit(two_step_plan(), seed=-1)
        with pytest.raises(ServiceError, match="unknown executor"):
            client.submit(two_step_plan(), executor="quantum")
        request = urllib.request.Request(
            f"{server.url}/v1/plans", data=b"not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestSubmitStreamResult:
    def test_submit_stream_and_fetch_result(self, client):
        plan = two_step_plan()
        job = client.submit(plan)
        assert job["status"] == "queued"
        assert [step["id"] for step in job["steps"]] == [step.id for step in plan]

        events = list(client.iter_events(job["id"]))
        names = [event["event"] for event in events]
        assert names[0] == "job-queued"
        assert names[-1] == "job-finished"
        assert names.count("step-started") == len(plan)
        assert names.count("step-finished") == len(plan)
        assert events[-1]["status"] == "succeeded"

        final = client.wait(job["id"], timeout=10.0)
        assert final["status"] == "succeeded"
        assert {step["status"] for step in final["steps"]} == {"succeeded"}
        assert final["simulations"] > 0

    def test_http_results_are_bitwise_identical_to_in_process_execution(self, client):
        """Acceptance: the service serves exactly Session.execute's results."""

        plan = two_step_plan()
        expected = Session().execute(plan)  # same seed (0), same executor (serial)
        job = client.submit(plan)
        final = client.wait(job["id"], timeout=120.0)
        for record in final["steps"]:
            in_process = step_result_payload(expected[record["id"]])
            # Compare through JSON: the wire crossing must lose nothing.
            assert record["result"] == json.loads(json.dumps(in_process))

    def test_jobs_listing_reflects_submissions(self, client):
        job = client.submit(two_step_plan())
        client.wait(job["id"], timeout=120.0)
        listed = client.jobs()
        assert [entry["id"] for entry in listed] == [job["id"]]
        assert listed[0]["status"] == "succeeded"

    def test_events_of_a_finished_job_replay_immediately(self, client):
        job = client.submit(two_step_plan())
        client.wait(job["id"], timeout=120.0)
        replay = list(client.iter_events(job["id"]))
        assert replay[-1]["event"] == "job-finished"

    def test_submitting_under_a_seed_forks_the_results(self, client):
        plan = Plan()
        plan.sweep(TARGETS[0], LAYER, sweep_step=8)
        base = client.wait(client.submit(plan)["id"], timeout=120.0)
        forked = client.wait(client.submit(plan, seed=9)["id"], timeout=120.0)
        assert base["steps"][0]["result"] != forked["steps"][0]["result"]


class TestResumeAfterRestart:
    def test_restart_replays_jobs_and_resubmission_simulates_nothing(self, tmp_path):
        """Acceptance: restart serves old jobs; a re-submitted plan is
        fully store-served (zero new simulator measurements)."""

        profile_path = tmp_path / "profiles.jsonl"
        jobs_path = tmp_path / "jobs.jsonl"
        plan = two_step_plan()

        with ReproServer(profile_store=profile_path, job_store=jobs_path) as first:
            client = ServiceClient(first.url)
            job = client.submit(plan)
            original = client.wait(job["id"], timeout=120.0)
            assert original["status"] == "succeeded"
            assert original["simulations"] > 0

        with ReproServer(profile_store=profile_path, job_store=jobs_path) as second:
            client = ServiceClient(second.url)
            # The finished job is served verbatim from the job store.
            replayed = client.job(job["id"])
            assert replayed["status"] == "succeeded"
            assert replayed["steps"] == original["steps"]
            # Re-submitting the identical plan replays measurements from
            # the profile store: zero new simulations, identical results.
            rerun = client.wait(client.submit(plan)["id"], timeout=120.0)
            assert rerun["status"] == "succeeded"
            assert rerun["simulations"] == 0
            assert [step["result"] for step in rerun["steps"]] == [
                step["result"] for step in original["steps"]
            ]


class TestFleetMetricsRollup:
    def make_snapshot(self, completed: float):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter(
            "repro_fleet_worker_completed_total", "Completed."
        ).inc(completed)
        return registry.snapshot()

    def test_push_then_fleet_scrape_merges_under_worker_labels(self, client):
        client.push_worker_metrics("w1", self.make_snapshot(2), label="one")
        client.push_worker_metrics("w2", self.make_snapshot(3), label="two")
        fleet = client.fleet_metrics()
        series = fleet["repro_fleet_worker_completed_total"]["series"]
        by_worker = {
            entry["labels"]["worker"]: entry["value"] for entry in series
        }
        # Earlier in-process fleet tests may have moved the same counter
        # in the process-global default registry (shown as _server), so
        # only pin down the two pushed workers.
        assert by_worker["one"] == 2.0
        assert by_worker["two"] == 3.0
        # The text exposition serves the same merged counters.
        text = client.fleet_metrics_text()
        assert 'repro_fleet_worker_completed_total{worker="one"} 2\n' in text
        assert 'repro_fleet_worker_completed_total{worker="two"} 3\n' in text

    def test_fleet_scrape_includes_the_server_under_its_own_label(self, client):
        client.health()  # move at least one server-side counter
        fleet = client.fleet_metrics()
        workers = {
            entry["labels"].get("worker")
            for family in fleet.values()
            for entry in family["series"]
        }
        assert "_server" in workers

    def test_garbage_snapshot_is_400_not_500(self, client, server):
        for bad in (b'"not a dict"', b'{"snapshot": "garbage"}',
                    b'{"snapshot": {"m": {"series": "x"}}}'):
            request = urllib.request.Request(
                f"{server.url}/v1/workers/w1/metrics", data=bad,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_real_worker_counters_survive_worker_exit(self, tmp_path):
        """Acceptance: the rollup remembers counters of exited workers."""

        from repro.obs.metrics import MetricsRegistry
        from repro.service.fleet.worker import run_worker

        plan = Plan()
        plan.sweep(TARGETS[0], LAYER, sweep_step=8)
        with ReproServer(
            profile_store=tmp_path / "profiles.jsonl", executor="remote",
        ) as running:
            client = ServiceClient(running.url)
            job = client.submit(plan)
            # A private registry keeps the pushed snapshot hermetic — the
            # process-global default registry accumulates across tests.
            completed = run_worker(
                running.url, name="push-worker", poll=0.2, max_leases=1,
                registry=MetricsRegistry(),
            )
            assert completed == 1
            assert client.wait(job["id"], timeout=60.0)["status"] == "succeeded"
            fleet = client.fleet_metrics()
            series = fleet["repro_fleet_worker_completed_total"]["series"]
            by_worker = {
                entry["labels"]["worker"]: entry["value"] for entry in series
            }
            assert by_worker["push-worker"] == 1.0
            assert client.fleet()["lifetime"]["completed"] == 1


class TestTraceHeaderHardening:
    @pytest.mark.parametrize("header", [
        "total garbage", "a/b/c", "UPPER/case", "zz!!/1234", "x" * 4096,
    ])
    def test_garbage_trace_header_is_ignored_not_500(self, client, server, header):
        plan = Plan()
        plan.sweep(TARGETS[0], LAYER, sweep_step=8)
        body = json.dumps({"plan": json.loads(plan.to_json())}).encode()
        request = urllib.request.Request(
            f"{server.url}/v1/plans", data=body,
            headers={"Content-Type": "application/json", "X-Repro-Trace": header},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            job = json.loads(response.read())
            assert response.status in (200, 202)
        # The job still runs to completion: the bad context was dropped.
        assert client.wait(job["id"], timeout=120.0)["status"] == "succeeded"


class TestStoreEndpoint:
    def test_store_stats_report_per_target_and_per_shard_figures(
        self, client, server
    ):
        plan = Plan()
        plan.sweep(TARGETS[0], LAYER, sweep_step=8)
        client.wait(client.submit(plan)["id"], timeout=30.0)

        stats = client.store_stats()
        assert stats["layout"] == "flat"
        assert stats["path"] == server.queue.profile_store
        assert stats["entries"] > 0
        assert stats["by_target"]  # library@device breakdown present
        assert "legacy" in stats["shards"]

    def test_store_endpoint_reflects_a_migrated_sharded_store(
        self, client, server
    ):
        from repro.profiling.store import ProfileStore

        plan = Plan()
        plan.sweep(TARGETS, LAYER, sweep_step=8)
        client.wait(client.submit(plan)["id"], timeout=30.0)
        ProfileStore(server.queue.profile_store).compact(shard=True)

        stats = client.store_stats()
        assert stats["layout"] == "sharded"
        assert len(stats["shards"]) == len(TARGETS)
        # A resubmission against the migrated store replays everything.
        final = client.wait(client.submit(plan)["id"], timeout=30.0)
        assert final["status"] == "succeeded"
        assert final["simulations"] == 0

    def test_store_endpoint_is_404_without_a_profile_store(self):
        with ReproServer() as bare:
            with pytest.raises(ServiceError) as excinfo:
                ServiceClient(bare.url, timeout=10.0).store_stats()
            assert excinfo.value.status == 404


class TestFleetStatusQuantiles:
    def test_fresh_fleet_reports_null_claim_wait_percentiles(self, client):
        """Regression: before any claim the p50/p95 must be null, not a
        quantile of some other server's process-global histogram."""

        autoscaling = client.fleet()["autoscaling"]
        assert autoscaling["claim_wait_p50_s"] is None
        assert autoscaling["claim_wait_p95_s"] is None
        assert autoscaling["pending_leases"] == 0


class TestConcurrencyAndCancel:
    def test_concurrent_submissions_from_two_client_threads(self, server):
        plans = {
            "a": Plan(), "b": Plan(),
        }
        plans["a"].sweep(TARGETS[0], LAYER, sweep_step=4)
        plans["b"].sweep(TARGETS[1], LAYER, sweep_step=4)
        outcomes = {}

        def submit_and_wait(name):
            client = ServiceClient(server.url)
            job = client.submit(plans[name])
            outcomes[name] = client.wait(job["id"], timeout=120.0)

        threads = [
            threading.Thread(target=submit_and_wait, args=(name,)) for name in plans
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert len(outcomes) == 2
        assert {job["status"] for job in outcomes.values()} == {"succeeded"}
        expected = Session().execute(plans["a"])
        step_id = plans["a"].steps[0].id
        assert outcomes["a"]["steps"][0]["result"] == step_result_payload(
            expected[step_id]
        )

    def test_cancel_endpoint_on_a_queued_job(self, server):
        # Stall the single worker so the second submission stays queued.
        HttpGateExecutor.entered.clear()
        HttpGateExecutor.release.clear()
        client = ServiceClient(server.url)
        try:
            plan = Plan()
            plan.sweep(TARGETS[0], LAYER, sweep_step=8)
            blocker = client.submit(plan, executor="test-gate-http")
            assert HttpGateExecutor.entered.wait(timeout=30.0)
            queued = client.submit(two_step_plan())
            cancelled = client.cancel(queued["id"])
            assert cancelled["status"] == "cancelled"
        finally:
            HttpGateExecutor.release.set()
        assert client.wait(blocker["id"], timeout=120.0)["status"] == "succeeded"
        events = list(client.iter_events(queued["id"]))
        assert events[-1]["event"] == "job-finished"
        assert events[-1]["status"] == "cancelled"
