"""Whole-network forward inference over the NumPy substrate.

Used by the examples and integration tests to demonstrate that pruned
networks remain executable end-to-end and that pruning a layer's output
channels produces exactly the sub-tensor of the unpruned activations for
the kept channels (the functional-equivalence property the paper's
"re-indexing" description implies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional

import numpy as np

from ..models.graph import Network
from ..models.layers import (
    ActivationLayerSpec,
    BatchNormLayerSpec,
    ConvLayerSpec,
    DropoutLayerSpec,
    FullyConnectedLayerSpec,
    LayerSpec,
    PoolLayerSpec,
)
from . import ops
from .direct_conv import direct_conv2d_for_spec
from .gemm_conv import gemm_conv2d_for_spec
from .tensor import conv_bias, conv_input, conv_weights, random_tensor

ConvMethod = Literal["gemm", "direct"]


@dataclass
class InferenceResult:
    """Output of a forward pass plus intermediate activations."""

    output: np.ndarray
    activations: Dict[str, np.ndarray]


class InferenceEngine:
    """Execute a :class:`Network` layer by layer on NumPy tensors."""

    def __init__(self, method: ConvMethod = "gemm") -> None:
        if method not in ("gemm", "direct"):
            raise ValueError(f"unknown convolution method {method!r}")
        self.method = method

    # ------------------------------------------------------------------
    def run_layer(self, spec: LayerSpec, inputs: np.ndarray) -> np.ndarray:
        """Execute a single layer spec on the given inputs."""

        if isinstance(spec, ConvLayerSpec):
            return self.run_conv(spec, inputs)
        if isinstance(spec, PoolLayerSpec):
            return ops.pool2d(inputs, spec)
        if isinstance(spec, ActivationLayerSpec):
            return ops.activation(inputs, spec)
        if isinstance(spec, BatchNormLayerSpec):
            return ops.batch_norm(inputs, spec)
        if isinstance(spec, DropoutLayerSpec):
            return ops.dropout(inputs, spec)
        if isinstance(spec, FullyConnectedLayerSpec):
            return ops.fully_connected(inputs, spec)
        raise TypeError(f"unsupported layer spec type: {type(spec).__name__}")

    def run_conv(
        self,
        spec: ConvLayerSpec,
        inputs: np.ndarray,
        weights: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute a convolution with the engine's configured method."""

        if weights is None:
            weights = conv_weights(spec)
        if bias is None:
            bias = conv_bias(spec)
        if self.method == "gemm":
            return gemm_conv2d_for_spec(inputs, weights, bias, spec)
        return direct_conv2d_for_spec(inputs, weights, bias, spec)

    # ------------------------------------------------------------------
    def run_network(
        self,
        network: Network,
        inputs: Optional[np.ndarray] = None,
        batch: int = 1,
        keep_activations: bool = False,
        stop_after: Optional[int] = None,
    ) -> InferenceResult:
        """Run a full forward pass through a network.

        ``stop_after`` limits execution to the first ``stop_after``
        layers, which keeps whole-network smoke tests cheap.
        """

        if inputs is None:
            channels, height, width = network.input_shape
            inputs = random_tensor((batch, channels, height, width), network.name + ".input")

        activations: Dict[str, np.ndarray] = {}
        current = inputs
        for position, spec in enumerate(network.layers):
            if stop_after is not None and position >= stop_after:
                break
            current = self.run_layer(spec, current)
            if keep_activations:
                activations[spec.name] = current
        return InferenceResult(output=current, activations=activations)


def run_single_layer(
    spec: ConvLayerSpec,
    method: ConvMethod = "gemm",
    batch: int = 1,
) -> np.ndarray:
    """Run one convolutional layer on deterministic data.

    This is the numerical counterpart of the paper's single-layer
    profiling: the layer executes in isolation on a synthetic input.
    """

    engine = InferenceEngine(method=method)
    inputs = conv_input(spec, batch=batch)
    return engine.run_conv(spec, inputs)


def prune_weights(weights: np.ndarray, keep_channels: List[int]) -> np.ndarray:
    """Select the kept output channels of a weight tensor.

    The paper describes pruning channel ``p`` as removing filter ``p``
    and re-indexing the remaining filters contiguously; selecting rows of
    the weight tensor is exactly that operation.
    """

    if not keep_channels:
        raise ValueError("keep_channels must not be empty")
    if len(set(keep_channels)) != len(keep_channels):
        raise ValueError("keep_channels contains duplicates")
    out_channels = weights.shape[0]
    for channel in keep_channels:
        if not 0 <= channel < out_channels:
            raise ValueError(
                f"channel {channel} out of range for weight tensor with "
                f"{out_channels} output channels"
            )
    return weights[sorted(keep_channels)]
