"""Figure 3: two parallel staircases, ResNet-50 layer 16, ACL on Mali G72."""

from conftest import run_benchmarked


def test_fig03_two_parallel_staircases(benchmark):
    result = run_benchmarked(benchmark, "fig03", runs=1)
    # Adjacent channel counts can differ by ~1.6x: the second staircase.
    assert result.measured["largest_adjacent_gap"] > 1.4
    assert result.measured["spread"] > 2.0
